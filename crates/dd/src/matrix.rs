//! Operator (matrix) decision diagrams and gate constructors.

use crate::edge::{MatrixEdge, VectorEdge};
use crate::govern::DdError;
use crate::ops::matrix_add;
use crate::DdPackage;
use circuit::{OneQubitGate, Permutation, Qubit};
use mathkit::Complex;

/// A linear operator on `n` qubits represented as a matrix decision diagram.
///
/// Operator DDs are used internally to apply gates by matrix–vector
/// multiplication, and exposed so callers can fuse gates or inspect gate
/// matrices.
///
/// # Examples
///
/// ```
/// use circuit::{OneQubitGate, Qubit};
/// use dd::{DdPackage, OperatorDd};
///
/// let mut package = DdPackage::new();
/// let cnot = OperatorDd::controlled_gate(&mut package, 2, OneQubitGate::X, Qubit(1), &[Qubit(0)])
///     .unwrap();
/// // CNOT maps |01> (control q0 = 1) to |11>.
/// assert_eq!(cnot.entry(&package, 0b11, 0b01).re, 1.0);
/// assert_eq!(cnot.entry(&package, 0b01, 0b01).re, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorDd {
    root: MatrixEdge,
    num_qubits: u16,
}

impl OperatorDd {
    /// Wraps an existing root edge.
    #[must_use]
    pub fn from_root(root: MatrixEdge, num_qubits: u16) -> Self {
        Self { root, num_qubits }
    }

    /// The root edge.
    #[must_use]
    pub fn root(&self) -> MatrixEdge {
        self.root
    }

    /// The number of qubits the operator acts on.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The identity operator on `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// run or a node arena overflows.
    pub fn identity(package: &mut DdPackage, num_qubits: u16) -> Result<Self, DdError> {
        let mut edge = package.matrix_terminal(Complex::ONE);
        for var in 0..num_qubits {
            edge = package.make_mnode(var, [edge, MatrixEdge::ZERO, MatrixEdge::ZERO, edge])?;
        }
        Ok(Self {
            root: edge,
            num_qubits,
        })
    }

    /// Builds the operator for a (multi-)controlled single-qubit gate.
    ///
    /// Controls may lie above or below the target in the variable order; the
    /// construction handles both by building, below the target level, the
    /// combination `delta_rc * (I - P) + u_rc * P` where `P` projects onto
    /// "all lower controls are 1".
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// run or a node arena overflows.
    ///
    /// # Panics
    ///
    /// Panics if the target coincides with a control or any qubit is out of
    /// range.
    pub fn controlled_gate(
        package: &mut DdPackage,
        num_qubits: u16,
        gate: OneQubitGate,
        target: Qubit,
        controls: &[Qubit],
    ) -> Result<Self, DdError> {
        assert!(
            target.index() < usize::from(num_qubits),
            "target {target} out of range"
        );
        assert!(
            !controls.contains(&target),
            "target {target} must not also be a control"
        );
        let mut is_control = vec![false; usize::from(num_qubits)];
        for c in controls {
            assert!(
                c.index() < usize::from(num_qubits),
                "control {c} out of range"
            );
            is_control[c.index()] = true;
        }
        let u = gate.matrix();
        let target_level = target.index() as u16;

        // Identity chains for every prefix of levels, used in control branches.
        let mut identity_chain = Vec::with_capacity(usize::from(num_qubits) + 1);
        identity_chain.push(package.matrix_terminal(Complex::ONE));
        for var in 0..num_qubits {
            let below = identity_chain[usize::from(var)];
            identity_chain
                .push(package.make_mnode(var, [below, MatrixEdge::ZERO, MatrixEdge::ZERO, below])?);
        }

        // mixed(level, a, b) builds `a * (I - P) + b * P` over levels 0..=level,
        // where P projects onto "all controls at those levels equal 1".
        fn mixed(
            package: &mut DdPackage,
            level: i32,
            a: Complex,
            b: Complex,
            is_control: &[bool],
            identity_chain: &[MatrixEdge],
        ) -> Result<MatrixEdge, DdError> {
            if level < 0 {
                return Ok(package.matrix_terminal(b));
            }
            let var = level as u16;
            let below = mixed(package, level - 1, a, b, is_control, identity_chain)?;
            if is_control[level as usize] {
                let id_below = identity_chain[level as usize];
                let zero_branch = package.scale_medge(id_below, a);
                package.make_mnode(
                    var,
                    [zero_branch, MatrixEdge::ZERO, MatrixEdge::ZERO, below],
                )
            } else {
                package.make_mnode(var, [below, MatrixEdge::ZERO, MatrixEdge::ZERO, below])
            }
        }

        // Build the target level: block (r, c) = delta_rc * (I - P) + u_rc * P.
        let mut blocks = [MatrixEdge::ZERO; 4];
        for row in 0..2usize {
            for col in 0..2usize {
                let delta = if row == col {
                    Complex::ONE
                } else {
                    Complex::ZERO
                };
                blocks[2 * row + col] = mixed(
                    package,
                    i32::from(target_level) - 1,
                    delta,
                    u[row][col],
                    &is_control,
                    &identity_chain,
                )?;
            }
        }
        let mut edge = package.make_mnode(target_level, blocks)?;

        // Levels above the target: controls gate the operator, other qubits
        // pass it through diagonally.
        for var in (target_level + 1)..num_qubits {
            edge = if is_control[usize::from(var)] {
                let id_below = identity_chain[usize::from(var)];
                package.make_mnode(var, [id_below, MatrixEdge::ZERO, MatrixEdge::ZERO, edge])?
            } else {
                package.make_mnode(var, [edge, MatrixEdge::ZERO, MatrixEdge::ZERO, edge])?
            };
        }

        Ok(Self {
            root: edge,
            num_qubits,
        })
    }

    /// Builds the operator for a (multi-)controlled basis-state permutation.
    ///
    /// The operator maps `|v>` to `|perm(v)>` on the permutation's register
    /// when every control is `|1>`, and acts as the identity otherwise.  It
    /// is assembled as `(I - P (x) I_R) + sum_v P (x) |perm(v)><v|_R`, one
    /// simple chain DD per register value, combined with [`matrix_add`].
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// run or a node arena overflows.
    ///
    /// # Panics
    ///
    /// Panics if register or control qubits are out of range or overlap.
    pub fn controlled_permutation(
        package: &mut DdPackage,
        num_qubits: u16,
        permutation: &Permutation,
        controls: &[Qubit],
    ) -> Result<Self, DdError> {
        let register = permutation.qubits();
        for q in register.iter().chain(controls) {
            assert!(
                q.index() < usize::from(num_qubits),
                "qubit {q} out of range"
            );
        }
        for c in controls {
            assert!(
                !register.contains(c),
                "control {c} must not be part of the permuted register"
            );
        }
        let mut is_control = vec![false; usize::from(num_qubits)];
        for c in controls {
            is_control[c.index()] = true;
        }
        let mut register_bit = vec![None; usize::from(num_qubits)];
        for (bit, q) in register.iter().enumerate() {
            register_bit[q.index()] = Some(bit);
        }

        // Identity chain reused by the control-failure term and chain builders.
        let mut identity_chain = Vec::with_capacity(usize::from(num_qubits) + 1);
        identity_chain.push(package.matrix_terminal(Complex::ONE));
        for var in 0..num_qubits {
            let below = identity_chain[usize::from(var)];
            identity_chain
                .push(package.make_mnode(var, [below, MatrixEdge::ZERO, MatrixEdge::ZERO, below])?);
        }

        // Term 1: identity on the subspace where not all controls are 1,
        // i.e. I - P (x) I_R.  Built with the same mixed recursion as gates:
        // a = 1 (identity part), b = 0 (controls-satisfied part), treating
        // register qubits as pass-through.
        fn not_all_controls(
            package: &mut DdPackage,
            level: i32,
            is_control: &[bool],
            identity_chain: &[MatrixEdge],
        ) -> Result<MatrixEdge, DdError> {
            if level < 0 {
                return Ok(MatrixEdge::ZERO);
            }
            let var = level as u16;
            let below = not_all_controls(package, level - 1, is_control, identity_chain)?;
            if is_control[level as usize] {
                let id_below = identity_chain[level as usize];
                package.make_mnode(var, [id_below, MatrixEdge::ZERO, MatrixEdge::ZERO, below])
            } else {
                package.make_mnode(var, [below, MatrixEdge::ZERO, MatrixEdge::ZERO, below])
            }
        }
        let mut total = not_all_controls(
            package,
            i32::from(num_qubits) - 1,
            &is_control,
            &identity_chain,
        )?;

        // One chain per register value v: P (x) |perm(v)><v| (x) I elsewhere.
        for (value, &mapped) in permutation.mapping().iter().enumerate() {
            let mut edge = package.matrix_terminal(Complex::ONE);
            for var in 0..num_qubits {
                let children = if let Some(bit) = register_bit[usize::from(var)] {
                    let col = (value >> bit) & 1;
                    let row = ((mapped >> bit) & 1) as usize;
                    let mut c = [MatrixEdge::ZERO; 4];
                    c[2 * row + col] = edge;
                    c
                } else if is_control[usize::from(var)] {
                    [MatrixEdge::ZERO, MatrixEdge::ZERO, MatrixEdge::ZERO, edge]
                } else {
                    [edge, MatrixEdge::ZERO, MatrixEdge::ZERO, edge]
                };
                edge = package.make_mnode(var, children)?;
            }
            total = matrix_add(package, total, edge)?;
        }

        Ok(Self {
            root: total,
            num_qubits,
        })
    }

    /// Builds an operator DD from a dense row-major matrix of size
    /// `2^n x 2^n` (intended for tests and very small operators).
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// run or a node arena overflows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with a power-of-two dimension.
    pub fn from_dense(package: &mut DdPackage, matrix: &[Vec<Complex>]) -> Result<Self, DdError> {
        let dim = matrix.len();
        assert!(
            dim.is_power_of_two(),
            "matrix dimension must be a power of two"
        );
        assert!(
            matrix.iter().all(|row| row.len() == dim),
            "matrix must be square"
        );
        let num_qubits = dim.trailing_zeros() as u16;

        fn build(
            package: &mut DdPackage,
            matrix: &[Vec<Complex>],
            row0: usize,
            col0: usize,
            size: usize,
        ) -> Result<MatrixEdge, DdError> {
            if size == 1 {
                return Ok(package.matrix_terminal(matrix[row0][col0]));
            }
            let half = size / 2;
            let var = (size.trailing_zeros() - 1) as u16;
            let mut children = [MatrixEdge::ZERO; 4];
            for row in 0..2 {
                for col in 0..2 {
                    children[2 * row + col] =
                        build(package, matrix, row0 + row * half, col0 + col * half, half)?;
                }
            }
            package.make_mnode(var, children)
        }

        let root = build(package, matrix, 0, 0, dim)?;
        Ok(Self { root, num_qubits })
    }

    /// The matrix entry at (`row`, `col`), reconstructed from the path
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[must_use]
    pub fn entry(&self, package: &DdPackage, row: u64, col: u64) -> Complex {
        assert!(
            self.num_qubits == 64
                || (row < (1u64 << self.num_qubits) && col < (1u64 << self.num_qubits)),
            "matrix index out of range"
        );
        if self.root.is_zero() {
            return Complex::ZERO;
        }
        let mut value = package.weight_value(self.root.weight);
        let mut edge = self.root;
        while !edge.is_terminal() {
            let node = package.mnode(edge.target);
            let r = ((row >> node.var) & 1) as usize;
            let c = ((col >> node.var) & 1) as usize;
            edge = node.children[2 * r + c];
            if edge.is_zero() {
                return Complex::ZERO;
            }
            value *= package.weight_value(edge.weight);
        }
        value
    }

    /// Applies the operator to a state, returning the resulting state edge.
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// run or a node arena overflows.
    pub fn apply(&self, package: &mut DdPackage, state: VectorEdge) -> Result<VectorEdge, DdError> {
        crate::ops::matrix_vector_multiply(package, self.root, state)
    }

    /// The number of matrix nodes reachable from the root.
    #[must_use]
    pub fn node_count(&self, package: &DdPackage) -> usize {
        package.reachable_matrix_nodes(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::SQRT1_2;

    fn assert_matrix_eq(
        package: &DdPackage,
        op: &OperatorDd,
        expected: &[Vec<Complex>],
        context: &str,
    ) {
        let dim = expected.len();
        #[allow(clippy::needless_range_loop)] // row/col double as matrix indices
        for row in 0..dim {
            for col in 0..dim {
                let got = op.entry(package, row as u64, col as u64);
                assert!(
                    (got - expected[row][col]).norm() < 1e-10,
                    "{context}: entry ({row}, {col}) = {got}, expected {}",
                    expected[row][col]
                );
            }
        }
    }

    #[test]
    fn identity_has_one_node_per_level() {
        let mut p = DdPackage::new();
        let id = OperatorDd::identity(&mut p, 4).unwrap();
        assert_eq!(id.node_count(&p), 4);
        for i in 0..16u64 {
            for j in 0..16u64 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((id.entry(&p, i, j).re - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn single_qubit_gate_on_one_qubit() {
        let mut p = DdPackage::new();
        let h = OperatorDd::controlled_gate(&mut p, 1, OneQubitGate::H, Qubit(0), &[]).unwrap();
        let s = Complex::from_real(SQRT1_2);
        assert_matrix_eq(&p, &h, &[vec![s, s], vec![s, -s]], "H");
    }

    #[test]
    fn uncontrolled_gate_embeds_in_larger_register() {
        let mut p = DdPackage::new();
        // X on qubit 1 of a 2-qubit register: |ab> -> |a XOR 1, b> with qubit 1 as MSB.
        let x1 = OperatorDd::controlled_gate(&mut p, 2, OneQubitGate::X, Qubit(1), &[]).unwrap();
        for col in 0..4u64 {
            let row = col ^ 0b10;
            assert!((x1.entry(&p, row, col).re - 1.0).abs() < 1e-12);
            assert!(x1.entry(&p, col, col).norm() < 1e-12);
        }
    }

    #[test]
    fn cnot_with_control_below_target() {
        let mut p = DdPackage::new();
        // Control on qubit 0, target on qubit 1.
        let cnot =
            OperatorDd::controlled_gate(&mut p, 2, OneQubitGate::X, Qubit(1), &[Qubit(0)]).unwrap();
        let one = Complex::ONE;
        let zero = Complex::ZERO;
        // Basis order |q1 q0>: 00, 01, 10, 11 -> indices 0..3.
        let expected = vec![
            vec![one, zero, zero, zero],
            vec![zero, zero, zero, one],
            vec![zero, zero, one, zero],
            vec![zero, one, zero, zero],
        ];
        assert_matrix_eq(&p, &cnot, &expected, "CNOT control below target");
    }

    #[test]
    fn cnot_with_control_above_target() {
        let mut p = DdPackage::new();
        // Control on qubit 1, target on qubit 0.
        let cnot =
            OperatorDd::controlled_gate(&mut p, 2, OneQubitGate::X, Qubit(0), &[Qubit(1)]).unwrap();
        let one = Complex::ONE;
        let zero = Complex::ZERO;
        let expected = vec![
            vec![one, zero, zero, zero],
            vec![zero, one, zero, zero],
            vec![zero, zero, zero, one],
            vec![zero, zero, one, zero],
        ];
        assert_matrix_eq(&p, &cnot, &expected, "CNOT control above target");
    }

    #[test]
    fn toffoli_matrix_is_a_permutation() {
        let mut p = DdPackage::new();
        let ccx = OperatorDd::controlled_gate(
            &mut p,
            3,
            OneQubitGate::X,
            Qubit(2),
            &[Qubit(0), Qubit(1)],
        )
        .unwrap();
        for col in 0..8u64 {
            let row = if col & 0b011 == 0b011 {
                col ^ 0b100
            } else {
                col
            };
            assert!(
                (ccx.entry(&p, row, col).re - 1.0).abs() < 1e-12,
                "column {col}"
            );
        }
    }

    #[test]
    fn controlled_phase_is_diagonal() {
        let mut p = DdPackage::new();
        let theta = std::f64::consts::FRAC_PI_4;
        let cp = OperatorDd::controlled_gate(
            &mut p,
            2,
            OneQubitGate::Phase(mathkit::Angle::Radians(theta)),
            Qubit(1),
            &[Qubit(0)],
        )
        .unwrap();
        for col in 0..4u64 {
            let expected = if col == 3 {
                Complex::phase(theta)
            } else {
                Complex::ONE
            };
            assert!((cp.entry(&p, col, col) - expected).norm() < 1e-12);
            assert!(cp.entry(&p, col, col ^ 1).norm() < 1e-12);
        }
    }

    #[test]
    fn from_dense_round_trips() {
        let mut p = DdPackage::new();
        let m = vec![
            vec![Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)],
            vec![Complex::new(0.5, 0.5), Complex::new(-1.0, 0.0)],
        ];
        let op = OperatorDd::from_dense(&mut p, &m).unwrap();
        assert_matrix_eq(&p, &op, &m, "dense 2x2");
    }

    #[test]
    fn permutation_operator_without_controls() {
        let mut p = DdPackage::new();
        // Increment modulo 4 on qubits 0..1.
        let perm = Permutation::new(vec![Qubit(0), Qubit(1)], vec![1, 2, 3, 0]).unwrap();
        let op = OperatorDd::controlled_permutation(&mut p, 2, &perm, &[]).unwrap();
        for col in 0..4u64 {
            let row = (col + 1) % 4;
            assert!((op.entry(&p, row, col).re - 1.0).abs() < 1e-12, "col {col}");
            for other in 0..4u64 {
                if other != row {
                    assert!(op.entry(&p, other, col).norm() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn controlled_permutation_acts_only_when_control_is_one() {
        let mut p = DdPackage::new();
        let perm = Permutation::new(vec![Qubit(0), Qubit(1)], vec![1, 2, 3, 0]).unwrap();
        let op = OperatorDd::controlled_permutation(&mut p, 3, &perm, &[Qubit(2)]).unwrap();
        // Control q2 = 0: identity on the low bits.
        for col in 0..4u64 {
            assert!((op.entry(&p, col, col).re - 1.0).abs() < 1e-12);
        }
        // Control q2 = 1: increment on the low bits.
        for col in 0..4u64 {
            let row = 4 + (col + 1) % 4;
            assert!((op.entry(&p, row, 4 + col).re - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn permutation_on_non_contiguous_register() {
        let mut p = DdPackage::new();
        // Swap the values of qubits 0 and 2 expressed as a permutation of the
        // register [q0, q2]: value bits (b0, b1) -> (b1, b0).
        let perm = Permutation::new(vec![Qubit(0), Qubit(2)], vec![0, 2, 1, 3]).unwrap();
        let op = OperatorDd::controlled_permutation(&mut p, 3, &perm, &[]).unwrap();
        for col in 0..8u64 {
            let b0 = col & 1;
            let b2 = (col >> 2) & 1;
            let row = (col & 0b010) | (b0 << 2) | b2;
            assert!(
                (op.entry(&p, row, col).re - 1.0).abs() < 1e-12,
                "col {col} expected row {row}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not also be a control")]
    fn control_equal_to_target_panics() {
        let mut p = DdPackage::new();
        let _ = OperatorDd::controlled_gate(&mut p, 2, OneQubitGate::X, Qubit(0), &[Qubit(0)]);
    }
}

//! State (vector) decision diagrams.

use crate::edge::{VectorEdge, VectorNodeId};
use crate::govern::DdError;
use crate::DdPackage;
use mathkit::{Complex, KahanSum};

/// A quantum state represented as an edge-weighted decision diagram.
///
/// A `StateDd` is a lightweight handle (root edge + qubit count) into a
/// [`DdPackage`], which owns the actual nodes.
///
/// # Examples
///
/// ```
/// use dd::{DdPackage, StateDd};
///
/// let mut package = DdPackage::new();
/// let state = StateDd::basis_state(&mut package, 3, 0b101).unwrap();
/// assert_eq!(state.amplitude(&package, 0b101).re, 1.0);
/// assert_eq!(state.amplitude(&package, 0b000).re, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateDd {
    root: VectorEdge,
    num_qubits: u16,
}

impl StateDd {
    /// Wraps an existing root edge (used internally and by advanced callers
    /// composing their own DDs).
    #[must_use]
    pub fn from_root(root: VectorEdge, num_qubits: u16) -> Self {
        Self { root, num_qubits }
    }

    /// The root edge of the diagram.
    #[must_use]
    pub fn root(&self) -> VectorEdge {
        self.root
    }

    /// The number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// Builds the all-zeros basis state `|0...0>`.
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// run or a node arena overflows.
    pub fn zero_state(package: &mut DdPackage, num_qubits: u16) -> Result<Self, DdError> {
        Self::basis_state(package, num_qubits, 0)
    }

    /// Builds the computational basis state `|index>`.
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// run or a node arena overflows.
    ///
    /// # Panics
    ///
    /// Panics if `index` has bits above `num_qubits`.
    pub fn basis_state(
        package: &mut DdPackage,
        num_qubits: u16,
        index: u64,
    ) -> Result<Self, DdError> {
        assert!(
            num_qubits == 64 || index < (1u64 << num_qubits),
            "basis index {index} out of range for {num_qubits} qubits"
        );
        let mut edge = package.vector_terminal(Complex::ONE);
        for var in 0..num_qubits {
            let bit = (index >> var) & 1;
            edge = if bit == 0 {
                package.make_vnode(var, edge, VectorEdge::ZERO)?
            } else {
                package.make_vnode(var, VectorEdge::ZERO, edge)?
            };
        }
        Ok(Self {
            root: edge,
            num_qubits,
        })
    }

    /// Builds a decision diagram from an explicit amplitude vector (length
    /// must be a power of two).
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// run or a node arena overflows.
    ///
    /// # Panics
    ///
    /// Panics if the length of `amplitudes` is not a power of two.
    pub fn from_amplitudes(
        package: &mut DdPackage,
        amplitudes: &[Complex],
    ) -> Result<Self, DdError> {
        assert!(
            amplitudes.len().is_power_of_two(),
            "amplitude vector length must be a power of two, got {}",
            amplitudes.len()
        );
        let num_qubits = amplitudes.len().trailing_zeros() as u16;

        fn build(package: &mut DdPackage, amps: &[Complex]) -> Result<VectorEdge, DdError> {
            if amps.len() == 1 {
                return Ok(package.vector_terminal(amps[0]));
            }
            let half = amps.len() / 2;
            let zero = build(package, &amps[..half])?;
            let one = build(package, &amps[half..])?;
            let var = (amps.len().trailing_zeros() - 1) as u16;
            package.make_vnode(var, zero, one)
        }

        let root = build(package, amplitudes)?;
        Ok(Self { root, num_qubits })
    }

    /// The amplitude of basis state `index`, reconstructed by multiplying the
    /// edge weights along the corresponding path (Example 9 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `index` has bits above `num_qubits`.
    #[must_use]
    pub fn amplitude(&self, package: &DdPackage, index: u64) -> Complex {
        assert!(
            self.num_qubits == 64 || index < (1u64 << self.num_qubits),
            "basis index {index} out of range for {} qubits",
            self.num_qubits
        );
        let mut value = package.weight_value(self.root.weight);
        let mut edge = self.root;
        while !edge.is_terminal() {
            if edge.is_zero() {
                return Complex::ZERO;
            }
            let node = package.vnode(edge.target);
            let bit = ((index >> node.var) & 1) as usize;
            edge = node.children[bit];
            if edge.is_zero() {
                return Complex::ZERO;
            }
            value *= package.weight_value(edge.weight);
        }
        if self.root.is_zero() {
            Complex::ZERO
        } else {
            value
        }
    }

    /// The measurement probability of basis state `index`.
    #[must_use]
    pub fn probability(&self, package: &DdPackage, index: u64) -> f64 {
        self.amplitude(package, index).norm_sqr()
    }

    /// Materialises the full amplitude vector (exponential in the qubit
    /// count; intended for tests and small examples).
    ///
    /// # Panics
    ///
    /// Panics if the state has more than 30 qubits, to prevent accidental
    /// exponential blow-ups.
    #[must_use]
    pub fn to_amplitudes(&self, package: &DdPackage) -> Vec<Complex> {
        assert!(
            self.num_qubits <= 30,
            "refusing to materialise a {}-qubit state vector",
            self.num_qubits
        );
        let len = 1usize << self.num_qubits;
        let mut out = vec![Complex::ZERO; len];
        // Depth-first traversal accumulating the weight product is linear in
        // the output size rather than in (paths * depth).
        fn walk(
            package: &DdPackage,
            edge: VectorEdge,
            factor: Complex,
            prefix: u64,
            out: &mut [Complex],
        ) {
            if edge.is_zero() {
                return;
            }
            let factor = factor * package.weight_value(edge.weight);
            if edge.is_terminal() {
                // Infallible: the ≤30-qubit guard bounds the prefix well
                // below usize::MAX.
                #[allow(clippy::expect_used)]
                let index = usize::try_from(prefix).expect("index fits");
                out[index] = factor;
                return;
            }
            let node = package.vnode(edge.target);
            walk(package, node.children[0], factor, prefix, out);
            walk(
                package,
                node.children[1],
                factor,
                prefix | (1 << node.var),
                out,
            );
        }
        walk(package, self.root, Complex::ONE, 0, &mut out);
        out
    }

    /// The squared 2-norm of the state (1 for a valid quantum state).
    #[must_use]
    pub fn norm_sqr(&self, package: &DdPackage) -> f64 {
        fn walk(
            package: &DdPackage,
            target: VectorNodeId,
            memo: &mut mathkit::FxHashMap<VectorNodeId, f64>,
        ) -> f64 {
            if target.is_terminal() {
                return 1.0;
            }
            if let Some(&v) = memo.get(&target) {
                return v;
            }
            let node = package.vnode(target);
            let mut sum = KahanSum::new();
            for child in node.children {
                if !child.is_zero() {
                    let w = package.weight_value(child.weight).norm_sqr();
                    sum.add(w * walk(package, child.target, memo));
                }
            }
            let value = sum.value();
            memo.insert(target, value);
            value
        }
        if self.root.is_zero() {
            return 0.0;
        }
        let mut memo = mathkit::FxHashMap::default();
        package.weight_value(self.root.weight).norm_sqr()
            * walk(package, self.root.target, &mut memo)
    }

    /// The number of decision-diagram nodes reachable from the root
    /// (excluding the terminal) — the "size" column of Table I.
    #[must_use]
    pub fn node_count(&self, package: &DdPackage) -> usize {
        package.reachable_vector_nodes(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::SQRT1_2;

    #[test]
    fn zero_state_has_one_node_per_qubit() {
        let mut p = DdPackage::new();
        let s = StateDd::zero_state(&mut p, 5).unwrap();
        assert_eq!(s.node_count(&p), 5);
        assert_eq!(s.amplitude(&p, 0), Complex::ONE);
        assert_eq!(s.amplitude(&p, 7), Complex::ZERO);
        assert!((s.norm_sqr(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn basis_state_amplitudes() {
        let mut p = DdPackage::new();
        let s = StateDd::basis_state(&mut p, 4, 0b1010).unwrap();
        for i in 0..16 {
            let expected = if i == 0b1010 { 1.0 } else { 0.0 };
            assert_eq!(s.probability(&p, i), expected, "index {i}");
        }
    }

    #[test]
    fn from_amplitudes_round_trips() {
        let mut p = DdPackage::new();
        let amps = vec![
            Complex::new(0.1, 0.2),
            Complex::new(-0.3, 0.0),
            Complex::new(0.0, 0.5),
            Complex::new(0.4, -0.1),
            Complex::ZERO,
            Complex::new(0.2, 0.2),
            Complex::new(-0.1, -0.4),
            Complex::new(0.3, 0.3),
        ];
        let s = StateDd::from_amplitudes(&mut p, &amps).unwrap();
        let back = s.to_amplitudes(&p);
        for (got, want) in back.iter().zip(amps.iter()) {
            assert!((*got - *want).norm() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn paper_fig4_state_has_five_nodes() {
        // Fig. 4b of the paper draws 1 q2 node, 2 q1 nodes and 3 q0 nodes;
        // with full node sharing the [0,1] leaf is reused by both q1 nodes,
        // so the canonical diagram has 5 nodes.
        let mut p = DdPackage::new();
        let a = Complex::new(0.0, -(3.0_f64 / 8.0).sqrt());
        let b = Complex::from_real((1.0_f64 / 8.0).sqrt());
        let amps = vec![
            Complex::ZERO,
            a,
            Complex::ZERO,
            a,
            b,
            Complex::ZERO,
            Complex::ZERO,
            b,
        ];
        let s = StateDd::from_amplitudes(&mut p, &amps).unwrap();
        assert_eq!(s.node_count(&p), 5);
        // Example 9: the amplitude of |111> is reconstructed from the path.
        assert!((s.amplitude(&p, 0b111) - b).norm() < 1e-12);
        assert!((s.amplitude(&p, 0b001) - a).norm() < 1e-12);
        assert!((s.norm_sqr(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_states_stay_linear_in_size() {
        // A uniform superposition over n qubits is a product state and must
        // use exactly one node per qubit.
        let mut p = DdPackage::new();
        let n = 8;
        let amps: Vec<Complex> = (0..1usize << n)
            .map(|_| Complex::from_real(SQRT1_2.powi(n as i32)))
            .collect();
        let s = StateDd::from_amplitudes(&mut p, &amps).unwrap();
        assert_eq!(s.node_count(&p), n);
        assert!((s.norm_sqr(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_has_two_nodes_per_level_below_the_root() {
        // (|000...0> + |111...1>)/sqrt(2): the root level has one node, every
        // level below has two.
        let mut p = DdPackage::new();
        let n = 6;
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::from_real(SQRT1_2);
        amps[(1 << n) - 1] = Complex::from_real(SQRT1_2);
        let s = StateDd::from_amplitudes(&mut p, &amps).unwrap();
        assert_eq!(s.node_count(&p), 2 * n - 1);
    }

    #[test]
    fn zero_vector_is_the_zero_edge() {
        let mut p = DdPackage::new();
        let s = StateDd::from_amplitudes(&mut p, &[Complex::ZERO; 4]).unwrap();
        assert!(s.root().is_zero());
        assert_eq!(s.norm_sqr(&p), 0.0);
        assert_eq!(s.node_count(&p), 0);
        assert_eq!(s.amplitude(&p, 3), Complex::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn amplitude_index_out_of_range_panics() {
        let mut p = DdPackage::new();
        let s = StateDd::zero_state(&mut p, 2).unwrap();
        let _ = s.amplitude(&p, 4);
    }

    #[test]
    fn normalization_schemes_agree_on_amplitudes() {
        use crate::Normalization;
        let amps = vec![
            Complex::new(0.5, 0.0),
            Complex::new(0.0, 0.5),
            Complex::new(-0.5, 0.0),
            Complex::new(0.0, -0.5),
        ];
        let mut left = DdPackage::with_normalization(Normalization::LeftMost);
        let mut norm = DdPackage::with_normalization(Normalization::TwoNorm);
        let a = StateDd::from_amplitudes(&mut left, &amps).unwrap();
        let b = StateDd::from_amplitudes(&mut norm, &amps).unwrap();
        for i in 0..4 {
            assert!(
                (a.amplitude(&left, i) - b.amplitude(&norm, i)).norm() < 1e-12,
                "index {i}"
            );
        }
    }
}

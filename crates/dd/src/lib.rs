//! Edge-weighted decision diagrams for quantum-circuit simulation and the
//! weak-simulation sampler of Hillmich, Markov and Wille (DAC 2020).
//!
//! # Overview
//!
//! A quantum state over `n` qubits is a vector of `2^n` complex amplitudes.
//! Decision diagrams (DDs) exploit redundancy in that vector: the vector is
//! split recursively into halves (one split per qubit), equal sub-vectors are
//! shared, and common factors are pulled out into complex *edge weights*.
//! The amplitude of a basis state is the product of the edge weights along
//! the corresponding root-to-terminal path.
//!
//! This crate provides
//!
//! * [`DdPackage`] — the arena that owns all nodes, the canonical
//!   complex-value table, the unique tables (for node sharing) and the
//!   compute tables (for memoized operations);
//! * [`StateDd`] — a state (vector) decision diagram rooted at a
//!   [`VectorEdge`];
//! * [`OperatorDd`] — an operator (matrix) decision diagram used to apply
//!   gates by matrix–vector multiplication;
//! * [`apply_circuit`]/[`simulate`] — strong simulation of a
//!   [`circuit::Circuit`] into a [`StateDd`], with gate-DD memoization
//!   keyed on (gate, target/control layout) in the package;
//! * [`CompiledSampler`] — the production sampling hot path: the paper's
//!   single-path weak simulation compiled into a flat arena for several-fold
//!   higher shot throughput, plus deterministic parallel shot batching
//!   (the interpreted reference samplers `DdSampler`/`NormalizedSampler`
//!   are behind the `comparison-samplers` feature, enabled only by the
//!   bench crate);
//! * [`Normalization`] — the standard left-most normalization and the
//!   paper's proposed 2-norm normalization, under which the probability of
//!   each branch can be read directly off the local edge weights.
//!
//! # The compiled-arena layout
//!
//! [`CompiledSampler::new`] flattens the subgraph reachable from the root
//! into one contiguous array of packed 24-byte node records, indexed by a
//! compact `u32` node id assigned in breadth-first discovery order (the root
//! is id 0).  Each record holds:
//!
//! | field      | type       | meaning                                        |
//! |------------|------------|------------------------------------------------|
//! | `p_zero`   | `f64`      | probability of branching to the 0-successor, with each child's downstream probability mass already folded in |
//! | `children` | `[u32; 2]` | compact ids of the 0/1 successors; `u32::MAX` marks the terminal (and unreachable zero branches) |
//! | `one_bit`  | `u64`      | `1 << var`, OR-ed into the sample when the 1-branch is taken |
//!
//! The packing matters: a traversal's node visits are data-dependent random
//! accesses, so on million-node diagrams the walk is cache-miss-bound and
//! one 24-byte record costs a single cache line where parallel arrays would
//! cost three.
//!
//! Folding the downstream mass into `p_zero` at compile time makes the
//! representation normalization-agnostic: under
//! [`Normalization::TwoNorm`] the downstream factors are all 1 and under
//! [`Normalization::LeftMost`] they are not, but either way a shot reduces
//! to one uniform draw, one `f64` compare, one masked OR and one `u32` hop
//! per level — no hashing, no [`DdPackage`] access, no recursion.
//!
//! # The parallel seeding scheme
//!
//! [`CompiledSampler::sample_many_parallel`] partitions the output into
//! fixed chunks of [`PARALLEL_CHUNK_SHOTS`] samples.  Chunk `i` is always
//! drawn from a fresh xoshiro256++ ([`rand::rngs::SmallRng`]) stream seeded
//! with `splitmix64(master_seed XOR (i + 1) * GOLDEN_GAMMA)`, and written to
//! the `i`-th output slice.  Worker threads only decide *which* chunks they
//! draw, never what the chunks contain, so for a fixed master seed the
//! output is bit-identical whether the batch runs on 1 thread or 128.
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, Qubit};
//! use dd::{CompiledSampler, DdPackage};
//! use rand::SeedableRng;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cx(Qubit(0), Qubit(1));
//!
//! let mut package = DdPackage::new();
//! let state = dd::simulate(&mut package, &bell)?;
//! assert_eq!(state.node_count(&package), 3);
//!
//! let sampler = CompiledSampler::new(&package, &state)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(11);
//! let shot = sampler.sample(&mut rng);
//! assert!(shot == 0 || shot == 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Resource governance
//!
//! Every long-running phase — node construction, gate application, sampler
//! compilation — is budgeted, deadlined and cancellable through a
//! [`Governor`] installed with [`DdPackage::set_governor`]; failures surface
//! as typed [`DdError`]s rather than panics.  See the [`govern`](crate::govern)
//! module docs for the amortized-check scheme and the degradation policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod apply;
mod compiled;
mod edge;
mod export;
pub mod govern;
mod matrix;
mod measure;
mod node;
mod ops;
mod package;
pub mod parallel;
mod sample;
mod vector;

pub use apply::{
    apply_circuit, apply_circuit_with_threads, apply_operation, apply_operation_with_threads,
    simulate, simulate_with_threads, ApplyError,
};
pub use compiled::{chunk_stream_seed, CompiledSampler, PARALLEL_CHUNK_SHOTS};
pub use edge::{MatrixEdge, MatrixNodeId, VectorEdge, VectorNodeId, WeightId};
pub use export::to_dot;
pub use govern::{CancelToken, DdError, Governor, DEFAULT_CHECK_INTERVAL};
#[cfg(feature = "fault-inject")]
pub use govern::{FaultPlan, InjectedFault};
pub use matrix::OperatorDd;
pub use measure::{
    amplitude_damp_keep, branch_masses, collapse_qubit, measure_all, measure_qubit, reset_qubit,
};
pub use node::{MatrixNode, VectorNode};
pub use ops::{add, inner_product, matrix_add, matrix_matrix_multiply, matrix_vector_multiply};
pub use package::{
    CacheCounters, DdPackage, DdStats, Normalization, ADD_CACHE_ENTRIES, MADD_CACHE_ENTRIES,
    MM_CACHE_ENTRIES, MV_CACHE_ENTRIES,
};
pub use sample::EdgeProbabilities;
#[cfg(feature = "comparison-samplers")]
pub use sample::{DdSampler, NormalizedSampler};
pub use vector::StateDd;

//! Edge-weighted decision diagrams for quantum-circuit simulation and the
//! weak-simulation sampler of Hillmich, Markov and Wille (DAC 2020).
//!
//! # Overview
//!
//! A quantum state over `n` qubits is a vector of `2^n` complex amplitudes.
//! Decision diagrams (DDs) exploit redundancy in that vector: the vector is
//! split recursively into halves (one split per qubit), equal sub-vectors are
//! shared, and common factors are pulled out into complex *edge weights*.
//! The amplitude of a basis state is the product of the edge weights along
//! the corresponding root-to-terminal path.
//!
//! This crate provides
//!
//! * [`DdPackage`] — the arena that owns all nodes, the canonical
//!   complex-value table, the unique tables (for node sharing) and the
//!   compute tables (for memoized operations);
//! * [`StateDd`] — a state (vector) decision diagram rooted at a
//!   [`VectorEdge`];
//! * [`OperatorDd`] — an operator (matrix) decision diagram used to apply
//!   gates by matrix–vector multiplication;
//! * [`apply_circuit`]/[`simulate`] — strong simulation of a
//!   [`circuit::Circuit`] into a [`StateDd`];
//! * [`DdSampler`] — the paper's contribution: weak simulation by
//!   precomputing *downstream* (and *upstream*) probabilities in time linear
//!   in the DD size and then drawing each sample with a single randomized
//!   root-to-terminal traversal (`O(n)` per sample);
//! * [`Normalization`] — the standard left-most normalization and the
//!   paper's proposed 2-norm normalization, under which the probability of
//!   each branch can be read directly off the local edge weights.
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, Qubit};
//! use dd::{DdPackage, DdSampler};
//! use rand::SeedableRng;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(Qubit(0));
//! bell.cx(Qubit(0), Qubit(1));
//!
//! let mut package = DdPackage::new();
//! let state = dd::simulate(&mut package, &bell)?;
//! assert_eq!(state.node_count(&package), 3);
//!
//! let sampler = DdSampler::new(&package, &state);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(11);
//! let shot = sampler.sample(&package, &mut rng);
//! assert!(shot == 0 || shot == 3);
//! # Ok::<(), dd::ApplyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod edge;
mod export;
mod matrix;
mod measure;
mod node;
mod ops;
mod package;
mod sample;
mod vector;

pub use apply::{apply_circuit, apply_operation, simulate, ApplyError};
pub use edge::{MatrixEdge, MatrixNodeId, VectorEdge, VectorNodeId, WeightId};
pub use export::to_dot;
pub use ops::{add, inner_product, matrix_add, matrix_matrix_multiply, matrix_vector_multiply};
pub use matrix::OperatorDd;
pub use measure::{measure_all, measure_qubit};
pub use node::{MatrixNode, VectorNode};
pub use package::{DdPackage, DdStats, Normalization};
pub use sample::{DdSampler, EdgeProbabilities, NormalizedSampler};
pub use vector::StateDd;

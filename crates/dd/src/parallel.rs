//! Parallel decision-diagram construction with deterministic merging.
//!
//! # Why sharded overlays instead of one shared concurrent table
//!
//! The contract of this module is brutal: the root edge produced with `N`
//! construction workers must be **bit-identical** — same arena ids, same
//! interned-value ids, same unique-table statistics-relevant structure — to
//! the root produced with one worker, for every `N`.  A single shared
//! unique/compute table mutated by racing workers cannot deliver that:
//! tolerance-based value interning is *order dependent* (the first value to
//! claim a tolerance ball becomes its canonical representative), so any
//! schedule-dependent interleaving of inserts leaks into canonical ids and
//! from there into every downstream hash.  The design that survives the
//! requirement is the one implemented here:
//!
//! 1. **Freeze the master.**  During a gate's matrix–vector multiply the
//!    master package is read-only.  Workers probe its unique table
//!    (`DdPackage::find_vnode`) and value table ([`mathkit::CTable::probe`])
//!    through a plain shared reference — no locks, no contention, and no
//!    way for one worker to observe another.
//! 2. **Shard the growth.**  Each unit of work runs against a private
//!    *overlay*: a worker-local node arena, open-addressing unique table
//!    (the same `UniqueTable` type the master uses, keyed by the same
//!    precomputed 64-bit `hash_mix`/`hash_finish` digest) and tolerance
//!    value table, all offset-coded above the frozen master's watermarks.
//! 3. **Re-intern canonically at the sync point.**  After the workers join,
//!    overlay results are grafted into the master *in fixed task order*,
//!    value-by-value and node-by-node, through the same interning primitives
//!    the sequential path uses (`DdPackage::intern_vnode`).  The master
//!    therefore evolves through the exact same sequence of inserts no matter
//!    how many workers computed the overlays, which is what makes the merged
//!    root worker-count invariant.
//!
//! The overlay is fresh **per task**, not per worker: reusing one overlay
//! across a worker's whole task list would make its interning order depend
//! on *which* tasks the scheduler handed that worker, silently breaking
//! invariance.  A fresh overlay's content is a pure function of its task.
//!
//! # Work decomposition
//!
//! `build_plan` deterministically unrolls the top `SPLIT_DEPTH` levels
//! of the `multiply_nodes` recursion against the master (resolving terminal,
//! identity-shortcut and compute-cache hits on the spot) into a plan tree
//! whose leaves are the independent sub-cones of the gate.  Leaves are
//! deduplicated by their `(matrix node, vector node)` key — the same key the
//! sequential compute cache uses — and become the task list.  Workers claim
//! contiguous task chunks under a `rayon`-shim scoped pool; the plan itself
//! is evaluated sequentially in the master after the graft, re-using the
//! grafted task results through the master compute cache.
//!
//! Note that the task list, the graft order and the plan evaluation are all
//! independent of the worker count; workers only decide *who* computes an
//! overlay, never what it contains or when it lands in the master.
//!
//! # Governance
//!
//! Every overlay checkpoints through a [`Governor::worker_view`], which
//! shares the master governor's amortization counter, deadline, cancellation
//! token and fault-injection plan — so budget/deadline/cancel checkpoints
//! (and injected faults) aggregate *across* workers exactly as they would
//! accumulate in a single-threaded run.  Node-budget pressure is aggregated
//! through a `SharedAlloc`: each overlay unique-table miss bumps one
//! shared atomic and re-checks the combined footprint, so a fleet of workers
//! cannot overshoot the budget by a factor of the worker count.  A failing
//! task surfaces the lowest-task-index error after the join; since workers
//! never touch the master, the package stays fully usable and a retry (or a
//! fresh run) is unaffected.

use crate::edge::{MatrixEdge, MatrixNodeId, VectorEdge, VectorNodeId, WeightId};
use crate::govern::{DdError, Governor};
use crate::node::VectorNode;
use crate::ops;
use crate::package::{DdPackage, Normalization, UniqueTable};
use mathkit::{hash_finish, hash_mix, CTable, Complex, FxHashMap};
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of top recursion levels unrolled into the task plan.  Up to
/// `4^SPLIT_DEPTH` leaves before deduplication — enough independent cones to
/// feed a small worker pool without fragmenting the work into cache-hostile
/// crumbs.
const SPLIT_DEPTH: u16 = 3;

/// Offset-code for the terminal node (mirrors `VectorNodeId::TERMINAL`).
const O_TERMINAL: u32 = u32::MAX;

/// Approximate cost of one overlay node charged against the byte budget:
/// the node payload plus one unique-table slot.
const NODE_COST: u64 = (size_of::<VectorNode>() + 16) as u64;

/// Cross-worker allocation aggregate for budget checks.
///
/// `base_*` snapshot the master's footprint at spawn time; every overlay
/// unique-table miss adds one node to `extra_nodes`, so each worker checks
/// the governor against the *combined* fleet footprint, not its own slice.
struct SharedAlloc {
    extra_nodes: AtomicU64,
    base_nodes: u64,
    base_bytes: u64,
}

/// An offset-coded interned weight: component indexes `< cbase` address the
/// frozen master value table, anything above is `cbase +` a worker-local
/// value id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct OWeight {
    re: u32,
    im: u32,
}

impl OWeight {
    /// Master ids 0/1 are the pre-interned `0.0`/`1.0`, so the canonical
    /// zero/one weights are representable without touching any table.
    const ZERO: OWeight = OWeight { re: 0, im: 0 };
    const ONE: OWeight = OWeight { re: 1, im: 0 };

    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

/// An offset-coded edge: targets `< vbase` are frozen master nodes,
/// [`O_TERMINAL`] is the terminal, anything else is `vbase +` a local index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct OEdge {
    target: u32,
    weight: OWeight,
}

impl OEdge {
    const ZERO: OEdge = OEdge {
        target: O_TERMINAL,
        weight: OWeight::ZERO,
    };
    const ONE: OEdge = OEdge {
        target: O_TERMINAL,
        weight: OWeight::ONE,
    };

    #[inline]
    fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    #[inline]
    fn is_terminal(self) -> bool {
        self.target == O_TERMINAL
    }
}

/// A worker-local vector node over offset-coded edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ONode {
    var: u16,
    children: [OEdge; 2],
}

/// Hashes an overlay node with the same fold/finish scheme as the master's
/// `vnode_hash`, over the offset-coded payload.
#[inline]
fn onode_hash(node: &ONode) -> u64 {
    let mut h = hash_mix(0, u64::from(node.var));
    for child in node.children {
        h = hash_mix(h, u64::from(child.target));
        h = hash_mix(
            h,
            (u64::from(child.weight.re) << 32) | u64::from(child.weight.im),
        );
    }
    hash_finish(h)
}

/// The result of one task: an offset-coded root plus the worker-local node
/// arena and value table it refers into.  Everything needed to graft, and
/// nothing referencing the worker that produced it.
struct TaskOutput {
    root: OEdge,
    nodes: Vec<ONode>,
    values: Vec<f64>,
}

/// A worker-private construction shard over a frozen master package.
///
/// Mirrors the sequential `multiply_nodes`/`add`/`make_vnode` recursion of
/// `ops.rs`/`package.rs` step for step — same shortcuts, same normalization,
/// same tolerance snapping — so an overlay computes the same *values* the
/// sequential path would, merely under local ids.
struct Overlay<'a> {
    master: &'a DdPackage,
    /// Master node-arena watermark: targets below are shared, frozen nodes.
    vbase: u32,
    /// Master value-table watermark: indexes below are shared, frozen values.
    cbase: u32,
    normalization: Normalization,
    nodes: Vec<ONode>,
    table: UniqueTable,
    values: CTable,
    add_cache: FxHashMap<(OEdge, OEdge), OEdge>,
    mul_cache: FxHashMap<(u32, u32), OEdge>,
    governor: Governor,
    shared: &'a SharedAlloc,
}

impl<'a> Overlay<'a> {
    fn new(master: &'a DdPackage, shared: &'a SharedAlloc) -> Self {
        let tolerance = master.ctable().tolerance();
        Self {
            master,
            vbase: master.vnode_base(),
            cbase: master.ctable().len() as u32,
            normalization: master.normalization(),
            nodes: Vec::new(),
            table: UniqueTable::with_slots(1 << 8),
            values: CTable::with_tolerance(tolerance),
            add_cache: FxHashMap::default(),
            mul_cache: FxHashMap::default(),
            governor: master.governor().worker_view(),
            shared,
        }
    }

    /// Decodes an offset-coded value index.
    #[inline]
    fn value(&self, index: u32) -> f64 {
        if index < self.cbase {
            self.master.ctable().values()[index as usize]
        } else {
            self.values.values()[(index - self.cbase) as usize]
        }
    }

    #[inline]
    fn weight_value(&self, w: OWeight) -> Complex {
        Complex::new(self.value(w.re), self.value(w.im))
    }

    /// Interns one real component: the frozen master is probed first so
    /// master-known values keep their canonical ids; only genuinely new
    /// values land in the worker-local table (offset above `cbase`).
    fn intern(&mut self, value: f64) -> u32 {
        if let Some(id) = self.master.ctable().probe(value) {
            return id.index() as u32;
        }
        self.cbase + self.values.intern(value).index() as u32
    }

    /// Mirrors `DdPackage::weight`: snap components within tolerance of zero
    /// to the canonical `0.0`, then intern both.
    fn weight(&mut self, value: Complex) -> OWeight {
        let tol = self.values.tolerance().eps();
        let re = if value.re.abs() <= tol { 0.0 } else { value.re };
        let im = if value.im.abs() <= tol { 0.0 } else { value.im };
        OWeight {
            re: self.intern(re),
            im: self.intern(im),
        }
    }

    /// Mirrors `DdPackage::vector_terminal`.
    fn terminal(&mut self, value: Complex) -> OEdge {
        let weight = self.weight(value);
        if weight.is_zero() {
            OEdge::ZERO
        } else {
            OEdge {
                target: O_TERMINAL,
                weight,
            }
        }
    }

    /// Mirrors `DdPackage::scale_vedge`.
    fn scale(&mut self, edge: OEdge, factor: Complex) -> OEdge {
        if edge.is_zero() {
            return OEdge::ZERO;
        }
        let weight = self.weight(self.weight_value(edge.weight) * factor);
        if weight.is_zero() {
            OEdge::ZERO
        } else {
            OEdge {
                target: edge.target,
                weight,
            }
        }
    }

    /// Re-codes a frozen master edge; master value ids are below `cbase` by
    /// construction, so the raw indexes transfer unchanged.
    #[inline]
    fn of_master(&self, edge: VectorEdge) -> OEdge {
        OEdge {
            target: if edge.target.is_terminal() {
                O_TERMINAL
            } else {
                edge.target.0
            },
            weight: OWeight {
                re: edge.weight.re.index() as u32,
                im: edge.weight.im.index() as u32,
            },
        }
    }

    /// The node behind a non-terminal offset-coded target.
    fn node(&self, target: u32) -> ONode {
        if target >= self.vbase {
            self.nodes[(target - self.vbase) as usize]
        } else {
            let node = self.master.vnode(VectorNodeId(target));
            ONode {
                var: node.var,
                children: [
                    self.of_master(node.children[0]),
                    self.of_master(node.children[1]),
                ],
            }
        }
    }

    /// If every component of `node` lives in the frozen master, the
    /// equivalent `VectorNode` (so the master unique table can be probed).
    fn as_master_node(&self, node: &ONode) -> Option<VectorNode> {
        let mut children = [VectorEdge::ZERO; 2];
        for (slot, child) in children.iter_mut().zip(node.children) {
            if child.is_zero() {
                continue;
            }
            if child.target != O_TERMINAL && child.target >= self.vbase {
                return None;
            }
            if child.weight.re >= self.cbase || child.weight.im >= self.cbase {
                return None;
            }
            *slot = VectorEdge {
                target: if child.target == O_TERMINAL {
                    VectorNodeId::TERMINAL
                } else {
                    VectorNodeId(child.target)
                },
                weight: WeightId {
                    re: self.master.ctable().id_at(child.weight.re as usize),
                    im: self.master.ctable().id_at(child.weight.im as usize),
                },
            };
        }
        Some(VectorNode {
            var: node.var,
            children,
        })
    }

    /// Mirrors `DdPackage::make_vnode`: checkpoint, normalize, canonicalize
    /// children, dedup — first against the frozen master, then the local
    /// shard — and charge the shared budget on a genuine allocation.
    fn make_node(&mut self, var: u16, zero: OEdge, one: OEdge) -> Result<OEdge, DdError> {
        self.governor.checkpoint()?;
        let w0 = if zero.is_zero() {
            Complex::ZERO
        } else {
            self.weight_value(zero.weight)
        };
        let w1 = if one.is_zero() {
            Complex::ZERO
        } else {
            self.weight_value(one.weight)
        };
        if w0.is_zero() && w1.is_zero() {
            return Ok(OEdge::ZERO);
        }

        let factor = match self.normalization {
            Normalization::LeftMost => {
                if !w0.is_zero() {
                    w0
                } else {
                    w1
                }
            }
            Normalization::TwoNorm => {
                let mag = (w0.norm_sqr() + w1.norm_sqr()).sqrt();
                let phase_source = if !w0.is_zero() { w0 } else { w1 };
                Complex::from_polar(mag, phase_source.arg())
            }
        };

        let nw0 = w0 / factor;
        let nw1 = w1 / factor;
        let zero_edge = self.canonical_child(zero, nw0);
        let one_edge = self.canonical_child(one, nw1);
        let node = ONode {
            var,
            children: [zero_edge, one_edge],
        };
        let target = self.intern_node(node)?;
        let weight = self.weight(factor);
        Ok(OEdge { target, weight })
    }

    fn canonical_child(&mut self, child: OEdge, normalized_weight: Complex) -> OEdge {
        let weight = self.weight(normalized_weight);
        if weight.is_zero() {
            OEdge::ZERO
        } else {
            OEdge {
                target: child.target,
                weight,
            }
        }
    }

    fn intern_node(&mut self, node: ONode) -> Result<u32, DdError> {
        // A node whose components are all master-frozen may already exist
        // canonically in the master; recognising it keeps the overlay (and
        // the graft) proportional to the genuinely new diagram.
        if let Some(master_node) = self.as_master_node(&node) {
            if let Some(id) = self.master.find_vnode(&master_node) {
                return Ok(id.0);
            }
        }
        let hash = onode_hash(&node);
        let nodes = &self.nodes;
        if let Some(local) = self.table.find(hash, |id| nodes[id as usize] == node) {
            return Ok(self.vbase + local);
        }
        // A miss is the only place the shard grows: charge the shared
        // cross-worker aggregate and re-check the combined footprint.
        let extra = self.shared.extra_nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.governor.is_limited() {
            self.governor.check_budget(
                self.shared.base_nodes + extra,
                self.shared.base_bytes + extra * NODE_COST,
            )?;
        }
        let local = u32::try_from(self.nodes.len())
            .ok()
            .filter(|&id| self.vbase.checked_add(id).is_some_and(|t| t != O_TERMINAL))
            .ok_or(DdError::ArenaOverflow { arena: "vector" })?;
        self.nodes.push(node);
        self.table.insert(hash, local);
        Ok(self.vbase + local)
    }

    /// Mirrors `ops::add` over offset-coded edges.
    fn add(&mut self, a: OEdge, b: OEdge) -> Result<OEdge, DdError> {
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        if a.is_terminal() && b.is_terminal() {
            let value = self.weight_value(a.weight) + self.weight_value(b.weight);
            return Ok(self.terminal(value));
        }

        let key = if (a.target, a.weight) <= (b.target, b.weight) {
            (a, b)
        } else {
            (b, a)
        };
        if let Some(&cached) = self.add_cache.get(&key) {
            return Ok(cached);
        }

        let a_node = self.node(a.target);
        let b_node = self.node(b.target);
        debug_assert_eq!(a_node.var, b_node.var);
        let wa = self.weight_value(a.weight);
        let wb = self.weight_value(b.weight);

        let mut children = [OEdge::ZERO; 2];
        for (bit, child) in children.iter_mut().enumerate() {
            let left = self.scale(a_node.children[bit], wa);
            let right = self.scale(b_node.children[bit], wb);
            *child = self.add(left, right)?;
        }
        let result = self.make_node(a_node.var, children[0], children[1])?;
        self.add_cache.insert(key, result);
        Ok(result)
    }

    /// Mirrors `ops::multiply_nodes`: the product of the sub-diagrams below
    /// `m` and `v`, incoming weights applied by the caller.  `m` is always a
    /// frozen master matrix node (overlays never build operators), and `v`
    /// descends through master state nodes only — locals arise purely as
    /// results.
    fn mul(&mut self, m: MatrixNodeId, v: u32) -> Result<OEdge, DdError> {
        if m.is_terminal() && v == O_TERMINAL {
            return Ok(OEdge::ONE);
        }
        debug_assert!(
            !m.is_terminal() && v != O_TERMINAL,
            "operator and state DDs must span the same qubits"
        );

        if self.master.is_identity_mnode(m) {
            return Ok(OEdge {
                target: v,
                weight: OWeight::ONE,
            });
        }

        let key = (m.0, v);
        if let Some(&cached) = self.mul_cache.get(&key) {
            return Ok(cached);
        }

        let m_node = *self.master.mnode(m);
        let v_node = self.node(v);
        debug_assert_eq!(
            m_node.var, v_node.var,
            "operator level {} does not match state level {}",
            m_node.var, v_node.var
        );

        let mut children = [OEdge::ZERO; 2];
        for (row, child) in children.iter_mut().enumerate() {
            let mut acc = OEdge::ZERO;
            for col in 0..2 {
                let m_child = m_node.children[2 * row + col];
                let v_child = v_node.children[col];
                if m_child.is_zero() || v_child.is_zero() {
                    continue;
                }
                let sub = self.mul(m_child.target, v_child.target)?;
                let factor =
                    self.master.weight_value(m_child.weight) * self.weight_value(v_child.weight);
                let term = self.scale(sub, factor);
                acc = self.add(acc, term)?;
            }
            *child = acc;
        }
        let result = self.make_node(m_node.var, children[0], children[1])?;
        self.mul_cache.insert(key, result);
        Ok(result)
    }
}

/// One fully-private task: build the product cone below `(m, v)` in a fresh
/// overlay.  The output is a pure function of `(master, m, v)` — never of
/// which worker ran it or what ran before it on the same thread.
fn run_task(
    master: &DdPackage,
    shared: &SharedAlloc,
    m: MatrixNodeId,
    v: VectorNodeId,
) -> Result<TaskOutput, DdError> {
    let mut overlay = Overlay::new(master, shared);
    let v_code = if v.is_terminal() { O_TERMINAL } else { v.0 };
    let root = overlay.mul(m, v_code)?;
    Ok(TaskOutput {
        root,
        nodes: overlay.nodes,
        values: overlay.values.values().to_vec(),
    })
}

/// The deterministic decomposition of a multiply into master-resolved edges,
/// task references and sequential combine steps.
enum Plan {
    /// Resolved against the master while planning (terminal pair, identity
    /// shortcut or compute-cache hit).
    Ready(VectorEdge),
    /// The result of the task at this index in the task list.
    Task(usize),
    /// A combine node: each row's weighted terms are summed and the two row
    /// results become the children of a fresh node at `var`; the result is
    /// entered into the master compute cache under `key`.
    Split {
        key: (MatrixNodeId, VectorNodeId),
        var: u16,
        rows: [Vec<(Complex, Plan)>; 2],
    },
}

/// Unrolls the top `depth` levels of the multiply recursion against the
/// master, deduplicating leaves into `tasks` by their compute-cache key.
fn build_plan(
    package: &mut DdPackage,
    m: MatrixNodeId,
    v: VectorNodeId,
    depth: u16,
    tasks: &mut Vec<(MatrixNodeId, VectorNodeId)>,
    index: &mut FxHashMap<(MatrixNodeId, VectorNodeId), usize>,
) -> Plan {
    if m.is_terminal() && v.is_terminal() {
        return Plan::Ready(VectorEdge::ONE);
    }
    if package.is_identity_mnode(m) {
        return Plan::Ready(VectorEdge {
            target: v,
            weight: WeightId::ONE,
        });
    }
    if let Some(cached) = package.mv_cache.lookup((m, v)) {
        return Plan::Ready(cached);
    }
    if depth == 0 {
        let task = *index.entry((m, v)).or_insert_with(|| {
            tasks.push((m, v));
            tasks.len() - 1
        });
        return Plan::Task(task);
    }

    let m_node = *package.mnode(m);
    let v_node = *package.vnode(v);
    debug_assert_eq!(m_node.var, v_node.var);

    let mut rows: [Vec<(Complex, Plan)>; 2] = [Vec::new(), Vec::new()];
    for (row, terms) in rows.iter_mut().enumerate() {
        for col in 0..2 {
            let m_child = m_node.children[2 * row + col];
            let v_child = v_node.children[col];
            if m_child.is_zero() || v_child.is_zero() {
                continue;
            }
            let factor =
                package.weight_value(m_child.weight) * package.weight_value(v_child.weight);
            let sub = build_plan(
                package,
                m_child.target,
                v_child.target,
                depth - 1,
                tasks,
                index,
            );
            terms.push((factor, sub));
        }
    }
    Plan::Split {
        key: (m, v),
        var: m_node.var,
        rows,
    }
}

/// Combines grafted task results through the master, mirroring the term
/// order of the sequential `multiply_nodes` loop.
fn eval_plan(
    package: &mut DdPackage,
    plan: &Plan,
    task_edges: &[VectorEdge],
) -> Result<VectorEdge, DdError> {
    match plan {
        Plan::Ready(edge) => Ok(*edge),
        Plan::Task(i) => Ok(task_edges[*i]),
        Plan::Split { key, var, rows } => {
            let mut children = [VectorEdge::ZERO; 2];
            for (row, terms) in rows.iter().enumerate() {
                let mut acc = VectorEdge::ZERO;
                for (factor, sub) in terms {
                    let sub_edge = eval_plan(package, sub, task_edges)?;
                    let term = package.scale_vedge(sub_edge, *factor);
                    acc = ops::add(package, acc, term)?;
                }
                children[row] = acc;
            }
            let result = package.make_vnode(*var, children[0], children[1])?;
            package.mv_cache.insert(*key, result);
            Ok(result)
        }
    }
}

/// Canonically re-interns one task's overlay into the master, in arena order
/// (a topological order: overlay children always precede their parents), and
/// returns the task root as a master edge.
fn graft(
    package: &mut DdPackage,
    vbase: u32,
    cbase: u32,
    out: &TaskOutput,
) -> Result<VectorEdge, DdError> {
    let mut map: Vec<VectorNodeId> = Vec::with_capacity(out.nodes.len());
    for onode in &out.nodes {
        let mut children = [VectorEdge::ZERO; 2];
        for (slot, child) in children.iter_mut().zip(onode.children) {
            *slot = decode_edge(package, vbase, cbase, &out.values, &map, child);
        }
        let id = package.intern_vnode(VectorNode {
            var: onode.var,
            children,
        })?;
        map.push(id);
    }
    Ok(decode_edge(
        package,
        vbase,
        cbase,
        &out.values,
        &map,
        out.root,
    ))
}

/// Decodes an offset-coded edge into a master edge: master targets transfer
/// unchanged, local targets go through the graft map, and weights are
/// re-interned by value through the master table (master-known values keep
/// their canonical ids — stored values are pairwise farther than the
/// tolerance apart, so re-interning an exactly-stored value is a hit on
/// itself).
fn decode_edge(
    package: &mut DdPackage,
    vbase: u32,
    cbase: u32,
    values: &[f64],
    map: &[VectorNodeId],
    edge: OEdge,
) -> VectorEdge {
    if edge.is_zero() {
        return VectorEdge::ZERO;
    }
    let component = |package: &DdPackage, index: u32| -> f64 {
        if index < cbase {
            package.ctable().values()[index as usize]
        } else {
            values[(index - cbase) as usize]
        }
    };
    let re = component(package, edge.weight.re);
    let im = component(package, edge.weight.im);
    let weight = package.weight(Complex::new(re, im));
    if weight.is_zero() {
        return VectorEdge::ZERO;
    }
    let target = if edge.target == O_TERMINAL {
        VectorNodeId::TERMINAL
    } else if edge.target < vbase {
        VectorNodeId(edge.target)
    } else {
        map[(edge.target - vbase) as usize]
    };
    VectorEdge { target, weight }
}

/// Matrix–vector multiply with the gate cone fanned out over `workers`
/// construction workers.
///
/// For any `workers >= 1` the result — and the master package's entire
/// post-call state — is bit-identical to the `workers == 1` run: the task
/// decomposition, graft order and combine order are fixed, and worker
/// overlays are pure functions of the frozen master.  (The result is
/// numerically equal, but not bit-identical, to the fully sequential
/// [`ops::matrix_vector_multiply`], whose interning order differs.)
///
/// # Errors
///
/// Fails with a [`DdError`] when the governor interrupts any worker or the
/// merge (budget, deadline, cancellation, injected fault) or an arena
/// overflows.  The first error in task order wins; the master package is
/// never left half-mutated by a failing worker, because workers only read it.
pub(crate) fn matrix_vector_multiply_parallel(
    package: &mut DdPackage,
    m: MatrixEdge,
    v: VectorEdge,
    workers: usize,
) -> Result<VectorEdge, DdError> {
    if m.is_zero() || v.is_zero() {
        return Ok(VectorEdge::ZERO);
    }
    let factor = package.weight_value(m.weight) * package.weight_value(v.weight);

    let mut tasks = Vec::new();
    let mut index = FxHashMap::default();
    let plan = build_plan(
        package,
        m.target,
        v.target,
        SPLIT_DEPTH,
        &mut tasks,
        &mut index,
    );

    let vbase = package.vnode_base();
    let cbase = package.ctable().len() as u32;

    let mut outputs: Vec<TaskOutput> = Vec::with_capacity(tasks.len());
    if !tasks.is_empty() {
        let shared = SharedAlloc {
            extra_nodes: AtomicU64::new(0),
            base_nodes: (package.allocated_vector_nodes() + package.allocated_matrix_nodes())
                as u64,
            base_bytes: package.approx_allocated_bytes(),
        };
        let workers = workers.max(1).min(tasks.len());
        let chunk = tasks.len().div_ceil(workers);
        let mut slots: Vec<Option<Result<TaskOutput, DdError>>> = Vec::new();
        slots.resize_with(tasks.len(), || None);
        {
            let master: &DdPackage = package;
            let shared = &shared;
            rayon::scope(|scope| {
                for (task_chunk, out_chunk) in tasks.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (&(tm, tv), out) in task_chunk.iter().zip(out_chunk.iter_mut()) {
                            *out = Some(run_task(master, shared, tm, tv));
                        }
                    });
                }
            });
        }
        for slot in slots {
            match slot {
                Some(Ok(output)) => outputs.push(output),
                // First error in task order wins, so failures are
                // reported identically for every worker count.
                Some(Err(e)) => return Err(e),
                // The scoped pool joins every worker before returning, and
                // a worker panic propagates out of `scope`.
                None => unreachable!("scoped worker exited without reporting"),
            }
        }
    }

    let mut task_edges = Vec::with_capacity(outputs.len());
    for (task, output) in tasks.iter().zip(&outputs) {
        let edge = graft(package, vbase, cbase, output)?;
        // Feed the master compute cache so sibling cones and later gates
        // reuse the grafted result exactly as the sequential path would.
        package.mv_cache.insert(*task, edge);
        task_edges.push(edge);
    }

    let normalized = eval_plan(package, &plan, &task_edges)?;
    Ok(package.scale_vedge(normalized, factor))
}

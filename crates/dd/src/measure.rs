//! Destructive measurement (state collapse) on decision diagrams.
//!
//! Weak simulation of *static* circuits never needs collapse — sampling is a
//! read-only operation that can be repeated (Section IV-B of the paper).
//! Collapse is the primitive behind trajectory simulation of *dynamic*
//! circuits (mid-circuit [`circuit::Operation::Measure`] /
//! [`circuit::Operation::Reset`], e.g. iterative phase estimation,
//! teleportation or error-correction experiments): the trajectory engine in
//! the `weaksim` crate draws an outcome from [`branch_masses`] and collapses
//! with [`collapse_qubit`].

use crate::edge::MatrixEdge;
use crate::govern::DdError;
use crate::ops::matrix_vector_multiply;
use crate::package::OperatorKey;
use crate::{CompiledSampler, DdPackage, StateDd};
use circuit::Qubit;
use mathkit::Complex;
use rand::Rng;

/// The absolute probability masses of the two measurement outcomes of
/// `qubit`: `[<psi|P_0|psi>, <psi|P_1|psi>]`, computed from the projected
/// subspaces.
///
/// The masses are *not* normalized by the state's norm — callers drawing an
/// outcome must divide by `masses[0] + masses[1]`, which keeps the draw
/// correct even when the state's norm has drifted from 1.0 through
/// floating-point error accumulated over many gates.
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
///
/// # Panics
///
/// Panics if `qubit` is outside the state.
pub fn branch_masses(
    package: &mut DdPackage,
    state: &StateDd,
    qubit: Qubit,
) -> Result<[f64; 2], DdError> {
    assert!(
        qubit.index() < usize::from(state.num_qubits()),
        "qubit {qubit} outside the {}-qubit state",
        state.num_qubits()
    );
    let zero = project(package, state, qubit, 0)?;
    let one = project(package, state, qubit, 1)?;
    Ok([zero.norm_sqr(package), one.norm_sqr(package)])
}

/// Projects the state onto `qubit = outcome` and renormalizes the projection
/// to unit norm (the post-measurement state of that outcome).
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
///
/// # Panics
///
/// Panics if `qubit` is outside the state or the projected subspace carries
/// no probability mass (the outcome is impossible).
pub fn collapse_qubit(
    package: &mut DdPackage,
    state: &StateDd,
    qubit: Qubit,
    outcome: u8,
) -> Result<StateDd, DdError> {
    assert!(
        qubit.index() < usize::from(state.num_qubits()),
        "qubit {qubit} outside the {}-qubit state",
        state.num_qubits()
    );
    let projected = project(package, state, qubit, outcome)?;
    let mass = projected.norm_sqr(package);
    assert!(
        mass > 0.0,
        "measurement produced an outcome of probability zero"
    );
    let renormalized = package.scale_vedge(projected.root(), Complex::from_real(1.0 / mass.sqrt()));
    Ok(StateDd::from_root(renormalized, state.num_qubits()))
}

/// Measures a single qubit in the computational basis, collapsing the state.
///
/// Returns the observed bit and the renormalized post-measurement state.
/// The outcome probabilities are computed from the masses of *both*
/// projected subspaces (normalized by their sum), and each branch is
/// renormalized by its own projected mass — so the result is exact even for
/// states whose norm has drifted away from 1.0.
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
///
/// # Panics
///
/// Panics if `qubit` is outside the state or the state is the zero vector.
pub fn measure_qubit<R: Rng + ?Sized>(
    package: &mut DdPackage,
    state: &StateDd,
    qubit: Qubit,
    rng: &mut R,
) -> Result<(u8, StateDd), DdError> {
    assert!(!state.root().is_zero(), "cannot measure the zero vector");
    let masses = branch_masses(package, state, qubit)?;
    let total = masses[0] + masses[1];
    assert!(total > 0.0, "cannot measure a state with zero total mass");
    let p_one = masses[1] / total;
    let outcome = u8::from(rng.gen::<f64>() < p_one);
    Ok((outcome, collapse_qubit(package, state, qubit, outcome)?))
}

/// Resets a qubit to `|0>`: measures it, then flips it when the outcome was
/// `1` (the standard measure-and-flip decomposition of the reset channel).
///
/// Returns the post-reset state; the sampled intermediate outcome is not
/// reported (it is not observable through a classical register).
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
///
/// # Panics
///
/// Panics if `qubit` is outside the state or the state is the zero vector.
pub fn reset_qubit<R: Rng + ?Sized>(
    package: &mut DdPackage,
    state: &StateDd,
    qubit: Qubit,
    rng: &mut R,
) -> Result<StateDd, DdError> {
    let (outcome, collapsed) = measure_qubit(package, state, qubit, rng)?;
    if outcome == 0 {
        return Ok(collapsed);
    }
    let flip = crate::matrix::OperatorDd::controlled_gate(
        package,
        collapsed.num_qubits(),
        circuit::OneQubitGate::X,
        qubit,
        &[],
    )?;
    Ok(StateDd::from_root(
        matrix_vector_multiply(package, flip.root(), collapsed.root())?,
        collapsed.num_qubits(),
    ))
}

/// Applies the amplitude-damping *no-decay* Kraus operator
/// `K0 = diag(1, sqrt(1 - gamma))` to `qubit` and renormalizes the result to
/// unit norm — the post-channel state of the branch in which the qubit did
/// **not** relax.
///
/// The decay branch (`K1 = sqrt(gamma) |0><1|`) needs no primitive of its
/// own: up to normalization it is [`collapse_qubit`] to outcome `1` followed
/// by an `X` flip, exactly the reset decomposition.  The trajectory engine
/// draws the branch from `gamma * P(qubit = 1)` (via [`branch_masses`]) and
/// realizes it with these two primitives.
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
///
/// # Panics
///
/// Panics if `qubit` is outside the state, `gamma` is not a probability, or
/// the no-decay branch carries no mass (only possible for `gamma = 1` on a
/// pure `|1>` qubit — a branch the engine then never draws).
pub fn amplitude_damp_keep(
    package: &mut DdPackage,
    state: &StateDd,
    qubit: Qubit,
    gamma: f64,
) -> Result<StateDd, DdError> {
    assert!(
        qubit.index() < usize::from(state.num_qubits()),
        "qubit {qubit} outside the {}-qubit state",
        state.num_qubits()
    );
    assert!(
        (0.0..=1.0).contains(&gamma),
        "damping parameter {gamma} is not a probability"
    );
    let n = state.num_qubits();
    // Build diag(1, sqrt(1-gamma)) on `qubit`, identity elsewhere (same
    // bottom-up construction as the measurement projector below), memoized
    // per (qubit, gamma) — trajectory replays reuse the operator.
    let edge = package.cached_operator(OperatorKey::damp_keep(n, qubit, gamma), |package| {
        let keep = Complex::from_real((1.0 - gamma).sqrt());
        let mut edge = package.matrix_terminal(Complex::ONE);
        for var in 0..n {
            let children = if usize::from(var) == qubit.index() {
                let damped_one = package.scale_medge(edge, keep);
                [edge, MatrixEdge::ZERO, MatrixEdge::ZERO, damped_one]
            } else {
                [edge, MatrixEdge::ZERO, MatrixEdge::ZERO, edge]
            };
            edge = package.make_mnode(var, children)?;
        }
        Ok(edge)
    })?;
    let damped = StateDd::from_root(matrix_vector_multiply(package, edge, state.root())?, n);
    let mass = damped.norm_sqr(package);
    assert!(
        mass > 0.0,
        "amplitude-damping no-decay branch has zero mass"
    );
    let renormalized = package.scale_vedge(damped.root(), Complex::from_real(1.0 / mass.sqrt()));
    Ok(StateDd::from_root(renormalized, n))
}

/// Measures every qubit, collapsing the state to a computational basis state.
///
/// Returns the observed bitstring (qubit `k` at bit `k`) and the collapsed
/// state.  The sample is drawn through a freshly compiled
/// [`CompiledSampler`] (one linear pass over the reachable diagram); callers
/// that draw many shots from an *unchanged* state should compile the sampler
/// themselves and reuse it.
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
///
/// # Panics
///
/// Panics if the state is the zero vector.
pub fn measure_all<R: Rng + ?Sized>(
    package: &mut DdPackage,
    state: &StateDd,
    rng: &mut R,
) -> Result<(u64, StateDd), DdError> {
    let sampler = CompiledSampler::new(package, state)?;
    let outcome = sampler.sample(rng);
    let collapsed = StateDd::basis_state(package, state.num_qubits(), outcome)?;
    Ok((outcome, collapsed))
}

/// Projects the state onto the subspace where `qubit` has value `bit`
/// (without renormalizing).
fn project(
    package: &mut DdPackage,
    state: &StateDd,
    qubit: Qubit,
    bit: u8,
) -> Result<StateDd, DdError> {
    let n = state.num_qubits();
    // The diagonal projector |bit><bit| on `qubit`, identity elsewhere —
    // memoized per (qubit, bit): branch-mass queries and collapses in
    // trajectory loops hit the same projectors over and over.
    let edge = package.cached_operator(OperatorKey::projector(n, qubit, bit), |package| {
        let mut edge = package.matrix_terminal(Complex::ONE);
        for var in 0..n {
            let children = if usize::from(var) == qubit.index() {
                let mut c = [MatrixEdge::ZERO; 4];
                c[usize::from(2 * bit + bit)] = edge;
                c
            } else {
                [edge, MatrixEdge::ZERO, MatrixEdge::ZERO, edge]
            };
            edge = package.make_mnode(var, children)?;
        }
        Ok(edge)
    })?;
    Ok(StateDd::from_root(
        matrix_vector_multiply(package, edge, state.root())?,
        n,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measuring_a_basis_state_is_deterministic() {
        let mut p = DdPackage::new();
        let state = StateDd::basis_state(&mut p, 4, 0b1010).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for q in 0..4u16 {
            let (bit, post) = measure_qubit(&mut p, &state, Qubit(q), &mut rng).unwrap();
            assert_eq!(u64::from(bit), (0b1010 >> q) & 1);
            assert!((post.norm_sqr(&p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn measuring_one_ghz_qubit_collapses_the_rest() {
        let mut p = DdPackage::new();
        let circuit = {
            let mut c = circuit::Circuit::new(4);
            c.h(Qubit(0));
            c.cx(Qubit(0), Qubit(1));
            c.cx(Qubit(1), Qubit(2));
            c.cx(Qubit(2), Qubit(3));
            c
        };
        let state = crate::simulate(&mut p, &circuit).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw = [false, false];
        for _ in 0..20 {
            let (bit, post) = measure_qubit(&mut p, &state, Qubit(2), &mut rng).unwrap();
            saw[usize::from(bit)] = true;
            // After measuring one qubit of a GHZ state all qubits agree.
            let expected = if bit == 1 { 0b1111 } else { 0 };
            assert!((post.probability(&p, expected) - 1.0).abs() < 1e-10);
            assert!((post.norm_sqr(&p) - 1.0).abs() < 1e-10);
        }
        assert!(saw[0] && saw[1], "both outcomes should occur in 20 tries");
    }

    #[test]
    fn measure_all_matches_the_distribution() {
        let mut p = DdPackage::new();
        let circuit = algorithms::w_state(3);
        let state = crate::simulate(&mut p, &circuit).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..3000 {
            let (outcome, collapsed) = measure_all(&mut p, &state, &mut rng).unwrap();
            counts[outcome as usize] += 1;
            assert!((collapsed.probability(&p, outcome) - 1.0).abs() < 1e-12);
        }
        // Only one-hot outcomes appear, each about a third of the time.
        for (i, &count) in counts.iter().enumerate() {
            if [1, 2, 4].contains(&i) {
                assert!(
                    (f64::from(count) / 3000.0 - 1.0 / 3.0).abs() < 0.05,
                    "outcome {i}"
                );
            } else {
                assert_eq!(count, 0, "impossible outcome {i} observed");
            }
        }
    }

    #[test]
    fn drifted_norm_states_measure_with_normalized_probabilities() {
        // A state of squared norm 0.25: both outcomes carry equal *relative*
        // probability, so the draw must behave exactly like the unit-norm
        // state.  (Regression: the 0-branch used to be renormalized with
        // `1 - p_one` where `p_one` was an absolute, unnormalized mass.)
        let mut p = DdPackage::new();
        let a = Complex::from_real(0.5 * mathkit::SQRT1_2);
        let state = StateDd::from_amplitudes(&mut p, &[a, a]).unwrap();
        assert!((state.norm_sqr(&p) - 0.25).abs() < 1e-12);

        let masses = branch_masses(&mut p, &state, Qubit(0)).unwrap();
        assert!((masses[0] - 0.125).abs() < 1e-12);
        assert!((masses[1] - 0.125).abs() < 1e-12);

        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            let (bit, post) = measure_qubit(&mut p, &state, Qubit(0), &mut rng).unwrap();
            counts[usize::from(bit)] += 1;
            // Either branch renormalizes to exactly unit norm.
            assert!((post.norm_sqr(&p) - 1.0).abs() < 1e-12);
        }
        for &c in &counts {
            assert!(
                (f64::from(c) / 2000.0 - 0.5).abs() < 0.05,
                "outcome frequencies must be 50/50, got {counts:?}"
            );
        }
    }

    #[test]
    fn collapse_qubit_projects_and_renormalizes() {
        let mut p = DdPackage::new();
        let circuit = algorithms::ghz(3);
        let state = crate::simulate(&mut p, &circuit).unwrap();
        for outcome in [0u8, 1u8] {
            let post = collapse_qubit(&mut p, &state, Qubit(1), outcome).unwrap();
            let expected = if outcome == 1 { 0b111 } else { 0 };
            assert!((post.probability(&p, expected) - 1.0).abs() < 1e-12);
            assert!((post.norm_sqr(&p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "probability zero")]
    fn collapsing_to_an_impossible_outcome_panics() {
        let mut p = DdPackage::new();
        let state = StateDd::basis_state(&mut p, 2, 0b00).unwrap();
        let _ = collapse_qubit(&mut p, &state, Qubit(0), 1);
    }

    #[test]
    fn reset_forces_the_qubit_to_zero() {
        let mut p = DdPackage::new();
        let mut c = circuit::Circuit::new(2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        let state = crate::simulate(&mut p, &c).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let post = reset_qubit(&mut p, &state, Qubit(0), &mut rng).unwrap();
            assert!((post.norm_sqr(&p) - 1.0).abs() < 1e-12);
            // Qubit 0 is |0>; qubit 1 keeps the collapsed partner value.
            let p0 = post.probability(&p, 0b00);
            let p2 = post.probability(&p, 0b10);
            assert!((p0 + p2 - 1.0).abs() < 1e-10);
            assert!(post.probability(&p, 0b01) < 1e-12);
            assert!(post.probability(&p, 0b11) < 1e-12);
        }
    }

    #[test]
    fn amplitude_damp_keep_scales_the_one_branch() {
        // On (|0> + |1>)/sqrt(2) with gamma = 0.36, K0 gives
        // (|0> + 0.8 |1>)/sqrt(1.64): P(1) = 0.64/1.64.
        let mut p = DdPackage::new();
        let a = Complex::from_real(mathkit::SQRT1_2);
        let state = StateDd::from_amplitudes(&mut p, &[a, a]).unwrap();
        let kept = amplitude_damp_keep(&mut p, &state, Qubit(0), 0.36).unwrap();
        assert!((kept.norm_sqr(&p) - 1.0).abs() < 1e-12);
        assert!((kept.probability(&p, 1) - 0.64 / 1.64).abs() < 1e-12);
        assert!((kept.probability(&p, 0) - 1.0 / 1.64).abs() < 1e-12);

        // gamma = 0 is the identity; a |0> qubit never changes.
        let zero = StateDd::basis_state(&mut p, 2, 0b00).unwrap();
        let kept = amplitude_damp_keep(&mut p, &zero, Qubit(1), 0.9).unwrap();
        assert!((kept.probability(&p, 0b00) - 1.0).abs() < 1e-12);

        // Entangled case: damping qubit 0 of a Bell pair reweights the
        // correlated |11> component.
        let h = Complex::from_real(mathkit::SQRT1_2);
        let bell = StateDd::from_amplitudes(&mut p, &[h, Complex::ZERO, Complex::ZERO, h]).unwrap();
        let kept = amplitude_damp_keep(&mut p, &bell, Qubit(0), 0.5).unwrap();
        // Masses: |00> keeps 1/2, |11> keeps (1-0.5)/2 = 1/4; renormalized.
        assert!((kept.probability(&p, 0b00) - (0.5 / 0.75)).abs() < 1e-12);
        assert!((kept.probability(&p, 0b11) - (0.25 / 0.75)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero mass")]
    fn fully_damping_a_pure_one_keep_branch_panics() {
        let mut p = DdPackage::new();
        let state = StateDd::basis_state(&mut p, 1, 1).unwrap();
        let _ = amplitude_damp_keep(&mut p, &state, Qubit(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn measuring_a_missing_qubit_panics() {
        let mut p = DdPackage::new();
        let state = StateDd::zero_state(&mut p, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = measure_qubit(&mut p, &state, Qubit(5), &mut rng);
    }
}

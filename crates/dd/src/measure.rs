//! Destructive measurement (state collapse) on decision diagrams.
//!
//! Weak simulation never needs collapse — sampling is a read-only operation
//! that can be repeated (Section IV-B of the paper).  Collapse is provided as
//! a library extension for users who interleave measurements with further
//! gates (e.g. iterative phase estimation or error-correction experiments).

use crate::edge::MatrixEdge;
use crate::ops::matrix_vector_multiply;
use crate::{DdPackage, DdSampler, StateDd};
use circuit::Qubit;
use mathkit::Complex;
use rand::Rng;

/// Measures a single qubit in the computational basis, collapsing the state.
///
/// Returns the observed bit and the renormalized post-measurement state.
///
/// # Panics
///
/// Panics if `qubit` is outside the state or the state is the zero vector.
pub fn measure_qubit<R: Rng + ?Sized>(
    package: &mut DdPackage,
    state: &StateDd,
    qubit: Qubit,
    rng: &mut R,
) -> (u8, StateDd) {
    assert!(
        qubit.index() < usize::from(state.num_qubits()),
        "qubit {qubit} outside the {}-qubit state",
        state.num_qubits()
    );
    assert!(!state.root().is_zero(), "cannot measure the zero vector");

    let projected_one = project(package, state, qubit, 1);
    let p_one = projected_one.norm_sqr(package);
    let outcome = u8::from(rng.gen::<f64>() < p_one);

    let (projected, probability) = if outcome == 1 {
        (projected_one, p_one)
    } else {
        (project(package, state, qubit, 0), 1.0 - p_one)
    };
    assert!(
        probability > 0.0,
        "measurement produced an outcome of probability zero"
    );
    let renormalized = package.scale_vedge(
        projected.root(),
        Complex::from_real(1.0 / probability.sqrt()),
    );
    (
        outcome,
        StateDd::from_root(renormalized, state.num_qubits()),
    )
}

/// Measures every qubit, collapsing the state to a computational basis state.
///
/// Returns the observed bitstring (qubit `k` at bit `k`) and the collapsed
/// state.
///
/// # Panics
///
/// Panics if the state is the zero vector.
pub fn measure_all<R: Rng + ?Sized>(
    package: &mut DdPackage,
    state: &StateDd,
    rng: &mut R,
) -> (u64, StateDd) {
    let sampler = DdSampler::new(package, state);
    let outcome = sampler.sample(package, rng);
    let collapsed = StateDd::basis_state(package, state.num_qubits(), outcome);
    (outcome, collapsed)
}

/// Projects the state onto the subspace where `qubit` has value `bit`
/// (without renormalizing).
fn project(package: &mut DdPackage, state: &StateDd, qubit: Qubit, bit: u8) -> StateDd {
    let n = state.num_qubits();
    // Build the diagonal projector |bit><bit| on `qubit`, identity elsewhere.
    let mut edge = package.matrix_terminal(Complex::ONE);
    for var in 0..n {
        let children = if usize::from(var) == qubit.index() {
            let mut c = [MatrixEdge::ZERO; 4];
            c[usize::from(2 * bit + bit)] = edge;
            c
        } else {
            [edge, MatrixEdge::ZERO, MatrixEdge::ZERO, edge]
        };
        edge = package.make_mnode(var, children);
    }
    StateDd::from_root(matrix_vector_multiply(package, edge, state.root()), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measuring_a_basis_state_is_deterministic() {
        let mut p = DdPackage::new();
        let state = StateDd::basis_state(&mut p, 4, 0b1010);
        let mut rng = StdRng::seed_from_u64(0);
        for q in 0..4u16 {
            let (bit, post) = measure_qubit(&mut p, &state, Qubit(q), &mut rng);
            assert_eq!(u64::from(bit), (0b1010 >> q) & 1);
            assert!((post.norm_sqr(&p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn measuring_one_ghz_qubit_collapses_the_rest() {
        let mut p = DdPackage::new();
        let circuit = {
            let mut c = circuit::Circuit::new(4);
            c.h(Qubit(0));
            c.cx(Qubit(0), Qubit(1));
            c.cx(Qubit(1), Qubit(2));
            c.cx(Qubit(2), Qubit(3));
            c
        };
        let state = crate::simulate(&mut p, &circuit).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw = [false, false];
        for _ in 0..20 {
            let (bit, post) = measure_qubit(&mut p, &state, Qubit(2), &mut rng);
            saw[usize::from(bit)] = true;
            // After measuring one qubit of a GHZ state all qubits agree.
            let expected = if bit == 1 { 0b1111 } else { 0 };
            assert!((post.probability(&p, expected) - 1.0).abs() < 1e-10);
            assert!((post.norm_sqr(&p) - 1.0).abs() < 1e-10);
        }
        assert!(saw[0] && saw[1], "both outcomes should occur in 20 tries");
    }

    #[test]
    fn measure_all_matches_the_distribution() {
        let mut p = DdPackage::new();
        let circuit = algorithms::w_state(3);
        let state = crate::simulate(&mut p, &circuit).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..3000 {
            let (outcome, collapsed) = measure_all(&mut p, &state, &mut rng);
            counts[outcome as usize] += 1;
            assert!((collapsed.probability(&p, outcome) - 1.0).abs() < 1e-12);
        }
        // Only one-hot outcomes appear, each about a third of the time.
        for (i, &count) in counts.iter().enumerate() {
            if [1, 2, 4].contains(&i) {
                assert!(
                    (f64::from(count) / 3000.0 - 1.0 / 3.0).abs() < 0.05,
                    "outcome {i}"
                );
            } else {
                assert_eq!(count, 0, "impossible outcome {i} observed");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn measuring_a_missing_qubit_panics() {
        let mut p = DdPackage::new();
        let state = StateDd::zero_state(&mut p, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = measure_qubit(&mut p, &state, Qubit(5), &mut rng);
    }
}

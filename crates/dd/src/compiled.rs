//! The compiled flat-arena sampler: the DD sampling hot path reduced to a
//! pure array walk, plus deterministic parallel shot batching.
//!
//! # Why compile?
//!
//! [`DdSampler`](crate::DdSampler) draws a sample by walking the decision
//! diagram root-to-terminal, paying per level for
//!
//! * a [`DdPackage`] node lookup (one indirection into the node arena),
//! * two complex-table reads to resolve the outgoing edge weights, and
//! * up to two hash-map lookups for the children's downstream probabilities.
//!
//! All of that is invariant across shots, so [`CompiledSampler::new`] folds
//! it into a one-time compilation pass: the subgraph reachable from the root
//! is flattened into a contiguous arena of packed 24-byte node records, each
//! holding the compact `[u32; 2]` child indices, the *precomputed*
//! probability of taking the 0-branch (downstream mass already folded in, so
//! both [`Normalization::LeftMost`](crate::Normalization) and
//! [`Normalization::TwoNorm`](crate::Normalization) compile to the same
//! representation), and the output bit contributed by the 1-branch.  A shot
//! is then `num_qubits` iterations of: draw a uniform `f64`, compare against
//! one `f64` load, OR one precomputed bit mask, follow one `u32` index.  No
//! hashing, no package access, no recursion, no branches on the bit value —
//! and at most one cache line touched per visited node, which is what
//! dominates on million-node diagrams (a parallel-array layout would touch
//! three).
//!
//! # Parallel shot batching
//!
//! [`CompiledSampler::sample_many_parallel`] splits the requested shots into
//! fixed-size chunks of [`PARALLEL_CHUNK_SHOTS`] samples.  Chunk `i` is drawn
//! by a dedicated [`SmallRng`] stream seeded from `(master_seed, i)` through
//! SplitMix64, and every chunk writes into its own disjoint slice of the
//! output vector — so the result is **bit-identical for a given master seed
//! regardless of the number of worker threads** (chunks are merely
//! distributed round-robin over workers; their content never depends on who
//! runs them).  See the module docs of [`crate`] for the seeding scheme.

use crate::edge::VectorNodeId;
use crate::govern::DdError;
use crate::{DdPackage, StateDd};
use rand::rngs::SmallRng;
use rand::{splitmix64, Rng, SeedableRng};

/// Number of shots drawn per deterministic RNG chunk in
/// [`CompiledSampler::sample_many_parallel`].
///
/// The value trades scheduling granularity against per-chunk seeding
/// overhead; it is a fixed constant because changing it changes which RNG
/// stream produces which shot (and therefore the sampled values for a given
/// master seed).
pub const PARALLEL_CHUNK_SHOTS: usize = 1024;

/// Sentinel index marking the terminal (or an unreachable zero branch).
const TERMINAL: u32 = u32::MAX;

/// One compiled node: everything a traversal step needs, packed into 24
/// bytes so a visited node costs (at most) one cache line instead of the
/// three a parallel-array layout would touch.
#[derive(Debug, Clone, Copy)]
struct CompiledNode {
    /// Probability of taking the 0-branch, downstream mass folded in.
    p_zero: f64,
    /// Compact indices of the 0/1 successors ([`TERMINAL`] ends the walk).
    children: [u32; 2],
    /// Output contribution of the 1-branch (`1 << var`).
    one_bit: u64,
}

/// A weak-simulation sampler compiled into a flat struct-of-arrays arena.
///
/// Compilation snapshots the reachable part of the decision diagram, so the
/// sampler stays valid even if the [`DdPackage`] is mutated or dropped
/// afterwards — unlike [`DdSampler`](crate::DdSampler), no package reference
/// is needed while sampling.  The arena is an owned `Vec` of plain data, so
/// the sampler is `Send + Sync + 'static`: it can be wrapped in an `Arc`
/// and shared across threads and across runs — the `weaksim` artifact
/// cache relies on exactly this to serve warm requests without re-running
/// strong simulation.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Qubit};
/// use dd::{CompiledSampler, DdPackage};
/// use rand::SeedableRng;
///
/// let mut ghz = Circuit::new(3);
/// ghz.h(Qubit(0));
/// ghz.cx(Qubit(0), Qubit(1));
/// ghz.cx(Qubit(1), Qubit(2));
///
/// let mut package = DdPackage::new();
/// let state = dd::simulate(&mut package, &ghz)?;
/// let sampler = CompiledSampler::new(&package, &state)?;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
/// let shot = sampler.sample(&mut rng);
/// assert!(shot == 0 || shot == 0b111);
///
/// // Deterministic parallel batching: same master seed, same samples,
/// // independent of the worker-thread count.
/// let a = sampler.sample_many_parallel(11, 4096);
/// let b = sampler.sample_many_parallel_with_threads(11, 4096, 3);
/// assert_eq!(a, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSampler {
    /// The flat arena, indexed by compact node id in breadth-first order.
    nodes: Vec<CompiledNode>,
    root: u32,
    num_qubits: u16,
}

impl CompiledSampler {
    /// Compiles the subgraph reachable from the state's root.
    ///
    /// Work is linear in the number of reachable nodes plus one `u32` per
    /// *allocated* arena slot (a single dense discovery array — memset-cheap
    /// even for arenas holding millions of garbage nodes); every other side
    /// table is sized by the reachable set and indexed by compact id, so on
    /// million-node diagrams no hash map is touched at all — the former
    /// hash-map-memoized passes dominated the compile time.  The package's
    /// normalization scheme is irrelevant: branch probabilities are computed
    /// from edge weights *times* downstream mass, which is exact for both
    /// schemes.
    ///
    /// # Errors
    ///
    /// Fails with a [`DdError`] when the package's governor interrupts the
    /// compilation (deadline or cancellation — the compile allocates no DD
    /// nodes, so node/byte budgets cannot trip here) or the reachable set
    /// exceeds the compact `u32` id space.
    ///
    /// # Panics
    ///
    /// Panics if the state is the zero vector (no probability mass to
    /// sample) or has more than 64 qubits (samples are `u64` bitstrings).
    pub fn new(package: &DdPackage, state: &StateDd) -> Result<Self, DdError> {
        let root_edge = state.root();
        assert!(!root_edge.is_zero(), "cannot sample from the zero vector");
        assert!(
            state.num_qubits() <= 64,
            "samples are u64 bitstrings; {} qubits do not fit",
            state.num_qubits()
        );

        let arena = package.allocated_vector_nodes();
        // Breadth-first discovery assigns compact indices root-first, so a
        // traversal touches the arena roughly front to back.  `index_of` is
        // the only arena-sized allocation of the compile.
        let mut index_of = vec![TERMINAL; arena];
        let mut order: Vec<VectorNodeId> = Vec::new();
        if !root_edge.target.is_terminal() {
            index_of[root_edge.target.index()] = 0;
            order.push(root_edge.target);
            let mut cursor = 0;
            while cursor < order.len() {
                package.governor().checkpoint()?;
                let node = package.vnode(order[cursor]);
                cursor += 1;
                for child in node.children {
                    if child.is_zero() || child.target.is_terminal() {
                        continue;
                    }
                    if index_of[child.target.index()] == TERMINAL {
                        // `< MAX`, not `<= MAX`: id u32::MAX is the TERMINAL
                        // sentinel and must never name a real node.
                        if order.len() >= u32::MAX as usize {
                            return Err(DdError::ArenaOverflow { arena: "compiled" });
                        }
                        index_of[child.target.index()] = order.len() as u32;
                        order.push(child.target);
                    }
                }
            }
        }

        // Downstream probability per *compact* id (NaN = not yet computed;
        // downstream masses are finite by construction).
        let mut downstream = vec![f64::NAN; order.len()];
        if !root_edge.target.is_terminal() {
            downstream_compact(package, &order, &index_of, &mut downstream);
        }

        let mut nodes = Vec::with_capacity(order.len());
        for &id in &order {
            package.governor().checkpoint()?;
            let node = package.vnode(id);
            let mut mass = [0.0f64; 2];
            let mut child_idx = [TERMINAL; 2];
            for bit in 0..2 {
                let child = node.children[bit];
                if child.is_zero() {
                    continue;
                }
                let down = if child.target.is_terminal() {
                    1.0
                } else {
                    downstream[index_of[child.target.index()] as usize]
                };
                mass[bit] = package.weight_value(child.weight).norm_sqr() * down;
                if !child.target.is_terminal() {
                    child_idx[bit] = index_of[child.target.index()];
                }
            }
            let total = mass[0] + mass[1];
            // A node with zero total mass is only reachable through a
            // zero-probability branch, i.e. never during sampling; park it
            // on the 0-branch.
            nodes.push(CompiledNode {
                p_zero: if total > 0.0 { mass[0] / total } else { 1.0 },
                children: child_idx,
                one_bit: 1u64 << node.var,
            });
        }

        Ok(Self {
            nodes,
            root: if root_edge.target.is_terminal() {
                TERMINAL
            } else {
                0
            },
            num_qubits: state.num_qubits(),
        })
    }

    /// The number of qubits in each output sample.
    #[must_use]
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The number of nodes in the compiled arena.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Heap bytes held by the compiled arena (24 packed bytes per node),
    /// the quantity an artifact cache charges against its byte budget for a
    /// retained sampler.
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<CompiledNode>()
    }

    /// Draws one basis-state sample: a pure array walk, `O(n)` per shot.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut index = 0u64;
        let mut at = self.root;
        while at != TERMINAL {
            let node = &self.nodes[at as usize];
            let one = u64::from(rng.gen::<f64>() >= node.p_zero);
            index |= node.one_bit & one.wrapping_neg();
            at = node.children[one as usize];
        }
        index
    }

    /// Draws `shots` samples sequentially from the given RNG.
    #[must_use = "the samples are the result of the weak simulation"]
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<u64> {
        (0..shots).map(|_| self.sample(rng)).collect()
    }

    /// Draws `shots` samples using every available worker thread (see
    /// [`rayon::current_num_threads`]).
    ///
    /// The output is bit-identical for a given `master_seed` regardless of
    /// the thread count; see the module docs for the chunked seeding scheme.
    #[must_use = "the samples are the result of the weak simulation"]
    pub fn sample_many_parallel(&self, master_seed: u64, shots: usize) -> Vec<u64> {
        self.sample_many_parallel_with_threads(master_seed, shots, rayon::current_num_threads())
    }

    /// [`sample_many_parallel`](Self::sample_many_parallel) with an explicit
    /// worker count (primarily for tests and scaling measurements).
    #[must_use = "the samples are the result of the weak simulation"]
    pub fn sample_many_parallel_with_threads(
        &self,
        master_seed: u64,
        shots: usize,
        threads: usize,
    ) -> Vec<u64> {
        self.sample_batch_parallel(master_seed, 0, shots, threads)
    }

    /// Draws one deterministic batch of a larger logical shot sequence.
    ///
    /// The batch covers global chunks `chunk_offset ..`, so splitting a huge
    /// shot count into consecutive batches — every batch except the last
    /// sized a multiple of [`PARALLEL_CHUNK_SHOTS`], with `chunk_offset`
    /// advanced by the number of chunks already drawn — produces exactly the
    /// same samples as one giant [`sample_many_parallel`] call.  This is how
    /// the `weaksim` front end serves `u64` shot counts that do not fit a
    /// single `usize` allocation (e.g. on 32-bit targets).
    #[must_use = "the samples are the result of the weak simulation"]
    pub fn sample_batch_parallel(
        &self,
        master_seed: u64,
        chunk_offset: u64,
        shots: usize,
        threads: usize,
    ) -> Vec<u64> {
        let threads = threads.max(1);
        let mut out = vec![0u64; shots];

        if threads == 1 || shots <= PARALLEL_CHUNK_SHOTS {
            for (chunk_index, chunk) in out.chunks_mut(PARALLEL_CHUNK_SHOTS).enumerate() {
                self.fill_chunk(master_seed, chunk_offset + chunk_index as u64, chunk);
            }
            return out;
        }

        // Round-robin the fixed-size chunks over the workers.  The
        // assignment only decides *who* draws a chunk, never *what* it
        // contains, so any distribution yields identical output.
        let mut assignments: Vec<Vec<(u64, &mut [u64])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (chunk_index, chunk) in out.chunks_mut(PARALLEL_CHUNK_SHOTS).enumerate() {
            assignments[chunk_index % threads].push((chunk_offset + chunk_index as u64, chunk));
        }
        rayon::scope(|scope| {
            for work in assignments {
                scope.spawn(move || {
                    for (chunk_index, chunk) in work {
                        self.fill_chunk(master_seed, chunk_index, chunk);
                    }
                });
            }
        });
        out
    }

    /// Draws one deterministic chunk: chunk `i` always uses the same
    /// [`SmallRng`] stream derived from `(master_seed, i)`.
    fn fill_chunk(&self, master_seed: u64, chunk_index: u64, chunk: &mut [u64]) {
        let mut rng = SmallRng::seed_from_u64(chunk_stream_seed(master_seed, chunk_index));
        for slot in chunk {
            *slot = self.sample(&mut rng);
        }
    }

    /// Serializes the arena into `out` as little-endian plain data, the
    /// payload format of the `weaksim` artifact-cache snapshot.  Everything
    /// a [`decode_snapshot`](Self::decode_snapshot) on another process needs
    /// to reproduce bit-identical samples: `num_qubits`, the root index and
    /// each node's `(p_zero bits, children, one_bit)` record in arena order.
    pub fn encode_snapshot(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.num_qubits.to_le_bytes());
        out.extend_from_slice(&self.root.to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for node in &self.nodes {
            out.extend_from_slice(&node.p_zero.to_bits().to_le_bytes());
            out.extend_from_slice(&node.children[0].to_le_bytes());
            out.extend_from_slice(&node.children[1].to_le_bytes());
            out.extend_from_slice(&node.one_bit.to_le_bytes());
        }
    }

    /// Reconstructs a sampler from [`encode_snapshot`](Self::encode_snapshot)
    /// bytes, validating every structural invariant a traversal relies on —
    /// in-range child and root indices, probabilities in `[0, 1]`,
    /// single-bit `one_bit` masks below the register width, and strictly
    /// level-descending edges (which rules out traversal cycles).  Returns
    /// `None` for any truncated, oversized or inconsistent payload: a
    /// corrupted snapshot section must never panic (or loop) a loader.
    #[must_use]
    pub fn decode_snapshot(bytes: &[u8]) -> Option<Self> {
        let mut cursor = Cursor::new(bytes);
        let num_qubits = cursor.u16()?;
        let root = cursor.u32()?;
        let node_count = usize::try_from(cursor.u64()?).ok()?;
        if num_qubits > 64 || cursor.remaining() != node_count.checked_mul(24)? {
            return None;
        }
        let in_range = |child: u32| child == TERMINAL || (child as usize) < node_count;
        if !in_range(root) {
            return None;
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let p_zero = f64::from_bits(cursor.u64()?);
            let children = [cursor.u32()?, cursor.u32()?];
            let one_bit = cursor.u64()?;
            if !(0.0..=1.0).contains(&p_zero)
                || !children.into_iter().all(in_range)
                || one_bit.count_ones() != 1
                || one_bit.trailing_zeros() >= u32::from(num_qubits)
            {
                return None;
            }
            nodes.push(CompiledNode {
                p_zero,
                children,
                one_bit,
            });
        }
        // Every edge must descend strictly in variable level: genuine
        // compiled arenas always do, and it guarantees the sampling walk
        // terminates even if a corrupted payload slipped past the checksum.
        let descending = nodes.iter().all(|node| {
            node.children
                .into_iter()
                .filter(|&child| child != TERMINAL)
                .all(|child| nodes[child as usize].one_bit < node.one_bit)
        });
        if !descending {
            return None;
        }
        Some(Self {
            nodes,
            root,
            num_qubits,
        })
    }
}

/// A bounds-checked little-endian reader over a snapshot payload.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self(bytes)
    }

    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
    }
}

/// Computes downstream probabilities for every discovered node into a dense
/// array indexed by *compact* id (`NaN` = unvisited); `index_of` translates
/// arena slots to compact ids (every reachable node is already discovered).
///
/// Uses an explicit work stack instead of recursion, so diagrams whose depth
/// equals the qubit count (e.g. basis states over tens of thousands of
/// qubits) cannot overflow the call stack.
fn downstream_compact(
    package: &DdPackage,
    order: &[VectorNodeId],
    index_of: &[u32],
    memo: &mut [f64],
) {
    // Depth-first post-order over the DAG: a node stays on the stack until
    // both non-terminal children are memoized, then its own mass is the
    // weight-squared-weighted sum of theirs.  Compact id 0 is the root.
    let mut stack: Vec<u32> = vec![0];
    while let Some(&compact) = stack.last() {
        if !memo[compact as usize].is_nan() {
            stack.pop();
            continue;
        }
        let node = package.vnode(order[compact as usize]);
        let mut children_ready = true;
        for child in node.children {
            if child.is_zero() || child.target.is_terminal() {
                continue;
            }
            let child_compact = index_of[child.target.index()];
            if memo[child_compact as usize].is_nan() {
                stack.push(child_compact);
                children_ready = false;
            }
        }
        if children_ready {
            let mut total = 0.0;
            for child in node.children {
                if child.is_zero() {
                    continue;
                }
                let down = if child.target.is_terminal() {
                    1.0
                } else {
                    memo[index_of[child.target.index()] as usize]
                };
                total += package.weight_value(child.weight).norm_sqr() * down;
            }
            memo[compact as usize] = total;
            stack.pop();
        }
    }
}

/// Derives the RNG seed of parallel chunk `chunk_index` from the master
/// seed: one SplitMix64 step over the pair, which decorrelates neighbouring
/// chunk indices and master seeds.
///
/// This is *the* seeding scheme of every deterministic batched sampler in
/// the workspace: [`CompiledSampler::sample_many_parallel`] uses it for its
/// fixed [`PARALLEL_CHUNK_SHOTS`]-shot chunks, and the trajectory engine of
/// the `weaksim` crate reuses it so per-shot trajectory simulation of
/// dynamic circuits is seed-deterministic independent of the thread count,
/// too.
#[must_use]
pub fn chunk_stream_seed(master_seed: u64, chunk_index: u64) -> u64 {
    let mut state = master_seed ^ (chunk_index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "comparison-samplers")]
    use crate::DdSampler;
    use crate::Normalization;
    use mathkit::Complex;
    use rand::rngs::StdRng;

    fn paper_example(package: &mut DdPackage) -> StateDd {
        let a = Complex::new(0.0, -(3.0_f64 / 8.0).sqrt());
        let b = Complex::from_real((1.0_f64 / 8.0).sqrt());
        StateDd::from_amplitudes(
            package,
            &[
                Complex::ZERO,
                a,
                Complex::ZERO,
                a,
                b,
                Complex::ZERO,
                Complex::ZERO,
                b,
            ],
        )
        .unwrap()
    }

    #[test]
    fn compiled_matches_exact_distribution() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        let mut rng = StdRng::seed_from_u64(2020);
        let shots = 200_000;
        let mut counts = [0u64; 8];
        for _ in 0..shots {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        let expected = [0.0, 0.375, 0.0, 0.375, 0.125, 0.0, 0.0, 0.125];
        for (i, &e) in expected.iter().enumerate() {
            let freq = counts[i] as f64 / shots as f64;
            assert!((freq - e).abs() < 0.01, "index {i}: {freq} vs {e}");
            if e == 0.0 {
                assert_eq!(counts[i], 0, "impossible outcome {i} was sampled");
            }
        }
    }

    #[test]
    fn both_normalizations_compile_to_the_same_distribution() {
        let shots = 100_000;
        let mut freqs: Vec<[f64; 8]> = Vec::new();
        for norm in [Normalization::TwoNorm, Normalization::LeftMost] {
            let mut p = DdPackage::with_normalization(norm);
            let s = paper_example(&mut p);
            let sampler = CompiledSampler::new(&p, &s).unwrap();
            let samples = sampler.sample_many_parallel(7, shots);
            let mut counts = [0u64; 8];
            for s in samples {
                counts[s as usize] += 1;
            }
            freqs.push(std::array::from_fn(|i| counts[i] as f64 / shots as f64));
        }
        #[allow(clippy::needless_range_loop)] // i indexes two parallel arrays
        for i in 0..8 {
            assert!(
                (freqs[0][i] - freqs[1][i]).abs() < 0.01,
                "index {i}: {} vs {}",
                freqs[0][i],
                freqs[1][i]
            );
        }
    }

    #[test]
    fn parallel_sampling_is_thread_count_invariant() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        // A shot count that is deliberately not a multiple of the chunk size.
        let shots = 3 * PARALLEL_CHUNK_SHOTS + 17;
        let reference = sampler.sample_many_parallel_with_threads(42, shots, 1);
        for threads in [2, 3, 8] {
            let run = sampler.sample_many_parallel_with_threads(42, shots, threads);
            assert_eq!(reference, run, "thread count {threads} changed the samples");
        }
        assert_ne!(
            reference,
            sampler.sample_many_parallel_with_threads(43, shots, 1),
            "different master seeds must give different samples"
        );
    }

    #[test]
    fn compiled_survives_package_mutation() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        // Fill the package with unrelated garbage; the compiled arena must
        // not care.
        for i in 0..100 {
            let t = p.vector_terminal(Complex::from_real(f64::from(i) + 2.0));
            let _ = p.make_vnode(0, t, t);
        }
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let shot = sampler.sample(&mut rng);
            assert!(matches!(shot, 1 | 3 | 4 | 7), "impossible outcome {shot}");
        }
    }

    #[test]
    fn compiled_sampler_is_send_sync_and_static() {
        // The artifact cache hands out `Arc<CompiledSampler>`-carrying
        // values to concurrent tenants; these bounds are its contract.
        fn assert_shareable<T: Send + Sync + 'static>() {}
        assert_shareable::<CompiledSampler>();
    }

    #[test]
    fn arena_bytes_tracks_the_node_count() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        assert_eq!(
            sampler.arena_bytes(),
            sampler.node_count() * std::mem::size_of::<CompiledNode>()
        );
        assert!(sampler.arena_bytes() > 0);
    }

    #[test]
    fn basis_state_always_samples_itself() {
        let mut p = DdPackage::new();
        let s = StateDd::basis_state(&mut p, 6, 0b101101).unwrap();
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        assert_eq!(sampler.num_qubits(), 6);
        assert_eq!(sampler.node_count(), 6);
        for shot in sampler.sample_many_parallel(9, 5000) {
            assert_eq!(shot, 0b101101);
        }
    }

    #[cfg(feature = "comparison-samplers")]
    #[test]
    fn agrees_with_dd_sampler_on_shared_seeded_histograms() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let general = DdSampler::new(&p, &s);
        let compiled = CompiledSampler::new(&p, &s).unwrap();
        let shots = 100_000;
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts_general = [0u64; 8];
        for _ in 0..shots {
            counts_general[general.sample(&p, &mut rng) as usize] += 1;
        }
        let mut counts_compiled = [0u64; 8];
        for _ in 0..shots {
            counts_compiled[compiled.sample(&mut rng) as usize] += 1;
        }
        for i in 0..8 {
            let fg = counts_general[i] as f64 / shots as f64;
            let fc = counts_compiled[i] as f64 / shots as f64;
            assert!((fg - fc).abs() < 0.01, "index {i}: {fg} vs {fc}");
        }
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn compiling_the_zero_vector_panics() {
        let mut p = DdPackage::new();
        let s = StateDd::from_amplitudes(&mut p, &[Complex::ZERO; 4]).unwrap();
        let _ = CompiledSampler::new(&p, &s);
    }

    #[test]
    fn scalar_state_samples_the_empty_bitstring() {
        let mut p = DdPackage::new();
        let s = StateDd::basis_state(&mut p, 0, 0).unwrap();
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.sample(&mut rng), 0);
        assert_eq!(sampler.node_count(), 0);
    }

    #[test]
    fn consecutive_batches_match_one_large_call() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        let shots = 5 * PARALLEL_CHUNK_SHOTS + 123;
        let reference = sampler.sample_many_parallel_with_threads(7, shots, 2);
        // Split at chunk boundaries: 2 chunks, then 3 chunks + remainder.
        let first = sampler.sample_batch_parallel(7, 0, 2 * PARALLEL_CHUNK_SHOTS, 2);
        let second = sampler.sample_batch_parallel(7, 2, 3 * PARALLEL_CHUNK_SHOTS + 123, 2);
        let stitched: Vec<u64> = first.into_iter().chain(second).collect();
        assert_eq!(reference, stitched);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        let mut bytes = Vec::new();
        sampler.encode_snapshot(&mut bytes);
        let decoded = CompiledSampler::decode_snapshot(&bytes).expect("round trip");
        assert_eq!(decoded.num_qubits(), sampler.num_qubits());
        assert_eq!(decoded.node_count(), sampler.node_count());
        assert_eq!(
            sampler.sample_many_parallel(77, 4096),
            decoded.sample_many_parallel(77, 4096),
            "decoded sampler must reproduce bit-identical samples"
        );
    }

    #[test]
    fn snapshot_decode_rejects_corruption_without_panicking() {
        let mut p = DdPackage::new();
        let s = paper_example(&mut p);
        let sampler = CompiledSampler::new(&p, &s).unwrap();
        let mut bytes = Vec::new();
        sampler.encode_snapshot(&mut bytes);

        // Truncation at every prefix length must fail cleanly.
        for len in 0..bytes.len() {
            assert!(CompiledSampler::decode_snapshot(&bytes[..len]).is_none());
        }
        // An out-of-range child index must be rejected.
        let mut oob = bytes.clone();
        let first_child = 2 + 4 + 8 + 8; // header + p_zero of node 0
        oob[first_child..first_child + 4].copy_from_slice(&u32::MAX.wrapping_sub(1).to_le_bytes());
        assert!(CompiledSampler::decode_snapshot(&oob).is_none());
        // A probability outside [0, 1] must be rejected.
        let mut bad_p = bytes.clone();
        bad_p[14..22].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        assert!(CompiledSampler::decode_snapshot(&bad_p).is_none());
    }

    #[test]
    fn chunk_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..4u64 {
            for chunk in 0..1000u64 {
                assert!(
                    seen.insert(chunk_stream_seed(master, chunk)),
                    "seed collision at master {master}, chunk {chunk}"
                );
            }
        }
    }
}

//! Memoized decision-diagram operations: vector addition, matrix addition,
//! matrix–vector and matrix–matrix multiplication.

use crate::edge::{MatrixEdge, VectorEdge};
use crate::govern::DdError;
use crate::DdPackage;
use mathkit::Complex;

/// Adds two state DDs (`a + b`), sharing structure through the package's
/// compute table.
///
/// Both edges must be rooted at the same variable level (or be terminal /
/// zero edges); this is always the case for DDs built over the same number
/// of qubits.
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
pub fn add(package: &mut DdPackage, a: VectorEdge, b: VectorEdge) -> Result<VectorEdge, DdError> {
    if a.is_zero() {
        return Ok(b);
    }
    if b.is_zero() {
        return Ok(a);
    }
    if a.is_terminal() && b.is_terminal() {
        let value = package.weight_value(a.weight) + package.weight_value(b.weight);
        return Ok(package.vector_terminal(value));
    }

    // Addition is commutative; canonicalize the key order to double the
    // compute-table hit rate.
    let key = if (a.target, a.weight) <= (b.target, b.weight) {
        (a, b)
    } else {
        (b, a)
    };
    if let Some(cached) = package.add_cache.lookup(key) {
        return Ok(cached);
    }

    // One of the edges is non-terminal here, so a variable always exists.
    #[allow(clippy::expect_used)]
    let var = package
        .vedge_var(a)
        .or_else(|| package.vedge_var(b))
        .expect("non-terminal edge must have a variable");
    debug_assert_eq!(
        package.vedge_var(a),
        package.vedge_var(b),
        "added DDs must be over the same variable level"
    );

    let wa = package.weight_value(a.weight);
    let wb = package.weight_value(b.weight);
    let a_node = *package.vnode(a.target);
    let b_node = *package.vnode(b.target);

    let mut children = [VectorEdge::ZERO; 2];
    for (bit, child) in children.iter_mut().enumerate() {
        let left = package.scale_vedge(a_node.children[bit], wa);
        let right = package.scale_vedge(b_node.children[bit], wb);
        *child = add(package, left, right)?;
    }
    let result = package.make_vnode(var, children[0], children[1])?;
    package.add_cache.insert(key, result);
    Ok(result)
}

/// Adds two operator DDs (`a + b`).
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
pub fn matrix_add(
    package: &mut DdPackage,
    a: MatrixEdge,
    b: MatrixEdge,
) -> Result<MatrixEdge, DdError> {
    if a.is_zero() {
        return Ok(b);
    }
    if b.is_zero() {
        return Ok(a);
    }
    if a.is_terminal() && b.is_terminal() {
        let value = package.weight_value(a.weight) + package.weight_value(b.weight);
        return Ok(package.matrix_terminal(value));
    }

    let key = if (a.target, a.weight) <= (b.target, b.weight) {
        (a, b)
    } else {
        (b, a)
    };
    if let Some(cached) = package.madd_cache.lookup(key) {
        return Ok(cached);
    }

    let a_node = *package.mnode(a.target);
    let b_node = *package.mnode(b.target);
    debug_assert_eq!(a_node.var, b_node.var);
    let wa = package.weight_value(a.weight);
    let wb = package.weight_value(b.weight);

    let mut children = [MatrixEdge::ZERO; 4];
    for (i, child) in children.iter_mut().enumerate() {
        let left = package.scale_medge(a_node.children[i], wa);
        let right = package.scale_medge(b_node.children[i], wb);
        *child = matrix_add(package, left, right)?;
    }
    let result = package.make_mnode(a_node.var, children)?;
    package.madd_cache.insert(key, result);
    Ok(result)
}

/// Multiplies an operator DD by a state DD (`m * v`), the core of
/// DD-based strong simulation.
///
/// The result weights are factored out of the recursion so the compute table
/// can be keyed on node identities alone.
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
pub fn matrix_vector_multiply(
    package: &mut DdPackage,
    m: MatrixEdge,
    v: VectorEdge,
) -> Result<VectorEdge, DdError> {
    if m.is_zero() || v.is_zero() {
        return Ok(VectorEdge::ZERO);
    }
    let factor = package.weight_value(m.weight) * package.weight_value(v.weight);
    let normalized = multiply_nodes(package, m, v)?;
    Ok(package.scale_vedge(normalized, factor))
}

/// Multiplies the sub-diagrams below `m.target` and `v.target`, ignoring the
/// incoming weights (they are applied by the caller).
fn multiply_nodes(
    package: &mut DdPackage,
    m: MatrixEdge,
    v: VectorEdge,
) -> Result<VectorEdge, DdError> {
    if m.is_terminal() && v.is_terminal() {
        return Ok(VectorEdge::ONE);
    }
    debug_assert!(
        !m.is_terminal() && !v.is_terminal(),
        "operator and state DDs must span the same qubits"
    );

    // Identity shortcut: gate operators are identity chains everywhere
    // outside the gate cone, so most of a multiply recursion would just
    // reconstruct `v` node by node.  Returning the sub-vector directly
    // removes that entire region from the compute working set.
    if package.is_identity_mnode(m.target) {
        return Ok(VectorEdge {
            target: v.target,
            weight: crate::edge::WeightId::ONE,
        });
    }

    let key = (m.target, v.target);
    if let Some(cached) = package.mv_cache.lookup(key) {
        return Ok(cached);
    }

    let m_node = *package.mnode(m.target);
    let v_node = *package.vnode(v.target);
    debug_assert_eq!(
        m_node.var, v_node.var,
        "operator level {} does not match state level {}",
        m_node.var, v_node.var
    );

    let mut children = [VectorEdge::ZERO; 2];
    #[allow(clippy::needless_range_loop)] // row also indexes m_node via 2*row+col
    for row in 0..2 {
        let mut acc = VectorEdge::ZERO;
        for col in 0..2 {
            let m_child = m_node.children[2 * row + col];
            let v_child = v_node.children[col];
            if m_child.is_zero() || v_child.is_zero() {
                continue;
            }
            let sub = multiply_nodes(package, m_child, v_child)?;
            let factor =
                package.weight_value(m_child.weight) * package.weight_value(v_child.weight);
            let term = package.scale_vedge(sub, factor);
            acc = add(package, acc, term)?;
        }
        children[row] = acc;
    }
    let result = package.make_vnode(m_node.var, children[0], children[1])?;
    package.mv_cache.insert(key, result);
    Ok(result)
}

/// Multiplies two operator DDs (`a * b`), used to fuse gates.
///
/// # Errors
///
/// Fails with a [`DdError`] when the package's governor interrupts the run
/// or a node arena overflows.
pub fn matrix_matrix_multiply(
    package: &mut DdPackage,
    a: MatrixEdge,
    b: MatrixEdge,
) -> Result<MatrixEdge, DdError> {
    if a.is_zero() || b.is_zero() {
        return Ok(MatrixEdge::ZERO);
    }
    let factor = package.weight_value(a.weight) * package.weight_value(b.weight);
    let normalized = multiply_matrix_nodes(package, a, b)?;
    Ok(package.scale_medge(normalized, factor))
}

fn multiply_matrix_nodes(
    package: &mut DdPackage,
    a: MatrixEdge,
    b: MatrixEdge,
) -> Result<MatrixEdge, DdError> {
    if a.is_terminal() && b.is_terminal() {
        return Ok(MatrixEdge::ONE);
    }
    debug_assert!(!a.is_terminal() && !b.is_terminal());

    // Identity shortcuts: `I * b = b`, `a * I = a` (sub-diagrams, weights
    // applied by the caller).
    if package.is_identity_mnode(a.target) {
        return Ok(MatrixEdge {
            target: b.target,
            weight: crate::edge::WeightId::ONE,
        });
    }
    if package.is_identity_mnode(b.target) {
        return Ok(MatrixEdge {
            target: a.target,
            weight: crate::edge::WeightId::ONE,
        });
    }

    let key = (a.target, b.target);
    if let Some(cached) = package.mm_cache.lookup(key) {
        return Ok(cached);
    }

    let a_node = *package.mnode(a.target);
    let b_node = *package.mnode(b.target);
    debug_assert_eq!(a_node.var, b_node.var);

    let mut children = [MatrixEdge::ZERO; 4];
    for row in 0..2 {
        for col in 0..2 {
            let mut acc = MatrixEdge::ZERO;
            for k in 0..2 {
                let a_child = a_node.children[2 * row + k];
                let b_child = b_node.children[2 * k + col];
                if a_child.is_zero() || b_child.is_zero() {
                    continue;
                }
                let sub = multiply_matrix_nodes(package, a_child, b_child)?;
                let factor =
                    package.weight_value(a_child.weight) * package.weight_value(b_child.weight);
                let term = package.scale_medge(sub, factor);
                acc = matrix_add(package, acc, term)?;
            }
            children[2 * row + col] = acc;
        }
    }
    let result = package.make_mnode(a_node.var, children)?;
    package.mm_cache.insert(key, result);
    Ok(result)
}

/// The inner product `<a|b>` of two state DDs over the same qubits.
pub fn inner_product(package: &mut DdPackage, a: VectorEdge, b: VectorEdge) -> Complex {
    fn recurse(package: &mut DdPackage, a: VectorEdge, b: VectorEdge) -> Complex {
        if a.is_zero() || b.is_zero() {
            return Complex::ZERO;
        }
        let wa = package.weight_value(a.weight).conj();
        let wb = package.weight_value(b.weight);
        if a.is_terminal() && b.is_terminal() {
            return wa * wb;
        }
        let a_node = *package.vnode(a.target);
        let b_node = *package.vnode(b.target);
        debug_assert_eq!(a_node.var, b_node.var);
        let mut total = Complex::ZERO;
        for bit in 0..2 {
            total += recurse(package, a_node.children[bit], b_node.children[bit]);
        }
        wa * wb * total
    }
    recurse(package, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateDd;
    use mathkit::SQRT1_2;

    fn from_amps(package: &mut DdPackage, amps: &[Complex]) -> VectorEdge {
        StateDd::from_amplitudes(package, amps).unwrap().root()
    }

    fn to_amps(package: &DdPackage, edge: VectorEdge, n: u16) -> Vec<Complex> {
        StateDd::from_root(edge, n).to_amplitudes(package)
    }

    #[test]
    fn add_is_elementwise() {
        let mut p = DdPackage::new();
        let a = from_amps(
            &mut p,
            &[
                Complex::from_real(1.0),
                Complex::ZERO,
                Complex::from_real(2.0),
                Complex::new(0.0, 1.0),
            ],
        );
        let b = from_amps(
            &mut p,
            &[
                Complex::from_real(0.5),
                Complex::from_real(3.0),
                Complex::from_real(-2.0),
                Complex::new(0.0, -1.0),
            ],
        );
        let sum = add(&mut p, a, b).unwrap();
        let amps = to_amps(&p, sum, 2);
        let expected = [
            Complex::from_real(1.5),
            Complex::from_real(3.0),
            Complex::ZERO,
            Complex::ZERO,
        ];
        for (got, want) in amps.iter().zip(expected.iter()) {
            assert!((*got - *want).norm() < 1e-12, "{got} != {want}");
        }
    }

    #[test]
    fn add_with_zero_is_identity() {
        let mut p = DdPackage::new();
        let a = from_amps(&mut p, &[Complex::ONE, Complex::ZERO]);
        assert_eq!(add(&mut p, a, VectorEdge::ZERO).unwrap(), a);
        assert_eq!(add(&mut p, VectorEdge::ZERO, a).unwrap(), a);
    }

    #[test]
    fn add_is_commutative_via_cache_key() {
        let mut p = DdPackage::new();
        let a = from_amps(&mut p, &[Complex::ONE, Complex::from_real(2.0)]);
        let b = from_amps(&mut p, &[Complex::from_real(3.0), Complex::from_real(-1.0)]);
        let ab = add(&mut p, a, b).unwrap();
        let ba = add(&mut p, b, a).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn identity_matrix_multiplication_preserves_state() {
        let mut p = DdPackage::new();
        let identity = crate::OperatorDd::identity(&mut p, 2).unwrap();
        let amps = [
            Complex::from_real(0.5),
            Complex::new(0.0, 0.5),
            Complex::from_real(-0.5),
            Complex::new(0.0, -0.5),
        ];
        let v = from_amps(&mut p, &amps);
        let result = matrix_vector_multiply(&mut p, identity.root(), v).unwrap();
        let out = to_amps(&p, result, 2);
        for (got, want) in out.iter().zip(amps.iter()) {
            assert!((*got - *want).norm() < 1e-12);
        }
    }

    #[test]
    fn inner_product_of_orthogonal_states_is_zero() {
        let mut p = DdPackage::new();
        let zero = StateDd::basis_state(&mut p, 2, 0).unwrap().root();
        let three = StateDd::basis_state(&mut p, 2, 3).unwrap().root();
        assert!(inner_product(&mut p, zero, three).norm() < 1e-12);
        assert!((inner_product(&mut p, zero, zero) - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn inner_product_of_superpositions() {
        let mut p = DdPackage::new();
        let h = Complex::from_real(SQRT1_2);
        let plus = from_amps(&mut p, &[h, h]);
        let minus = from_amps(&mut p, &[h, -h]);
        assert!(inner_product(&mut p, plus, minus).norm() < 1e-12);
        assert!((inner_product(&mut p, plus, plus) - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn matrix_add_builds_sums() {
        let mut p = DdPackage::new();
        // |0><0| + |1><1| over one qubit equals the identity.
        let one = p.matrix_terminal(Complex::ONE);
        let proj0 = p
            .make_mnode(
                0,
                [one, MatrixEdge::ZERO, MatrixEdge::ZERO, MatrixEdge::ZERO],
            )
            .unwrap();
        let proj1 = p
            .make_mnode(
                0,
                [MatrixEdge::ZERO, MatrixEdge::ZERO, MatrixEdge::ZERO, one],
            )
            .unwrap();
        let sum = matrix_add(&mut p, proj0, proj1).unwrap();
        let identity = crate::OperatorDd::identity(&mut p, 1).unwrap().root();
        assert_eq!(sum, identity);
    }

    #[test]
    fn matrix_matrix_multiply_composes_operators() {
        let mut p = DdPackage::new();
        // X * X = I on one qubit.
        let one = p.matrix_terminal(Complex::ONE);
        let x = p
            .make_mnode(0, [MatrixEdge::ZERO, one, one, MatrixEdge::ZERO])
            .unwrap();
        let xx = matrix_matrix_multiply(&mut p, x, x).unwrap();
        let identity = crate::OperatorDd::identity(&mut p, 1).unwrap().root();
        assert_eq!(xx, identity);
    }
}

//! Cooperative resource governance for decision-diagram work.
//!
//! Decision-diagram construction is the one phase of weak simulation whose
//! cost is *not* known in advance: the arena can stay tiny for a structured
//! circuit or blow past a million nodes for a supremacy-style one.  This
//! module makes that phase **budgeted, deadlined, and cancellable** without
//! giving up the hot-path throughput the package is built around.
//!
//! # The governor
//!
//! A [`Governor`] carries up to four limits:
//!
//! * a **node budget** — an upper bound on allocated arena nodes (vector and
//!   matrix nodes combined),
//! * a **byte budget** — an approximate upper bound on package memory
//!   (arenas, unique tables and compute caches),
//! * a **deadline** — a wall-clock [`Instant`] after which work must stop,
//! * a **cancellation token** — a shareable flag another thread may set.
//!
//! Long-running loops call [`Governor::checkpoint`] once per unit of work
//! (one make-node call, one compiled-arena BFS step, one trajectory event).
//! The checkpoint is engineered for amortized cost:
//!
//! * an *unlimited* governor (no budgets, no deadline, no token) is a single
//!   branch on a cached `active` flag — construction throughput stays within
//!   noise of an ungoverned build;
//! * a limited governor bumps a relaxed atomic counter and only consults the
//!   clock / the token every [`check_interval`](Governor::with_check_interval)
//!   calls (default [`DEFAULT_CHECK_INTERVAL`]).  Budget arithmetic itself is
//!   two integer compares and runs on every *miss* of the unique table — the
//!   only place the arena can actually grow.
//!
//! The **sizing knob**: `check_interval` trades detection latency against
//! overhead.  At the default of 4096, a build that allocates ~1M nodes/s
//! consults the clock ~250 times per second, so a deadline or cancellation
//! is honoured within a few milliseconds while the per-node cost stays at a
//! counter increment.  Raise it for micro-benchmarks, lower it if you need
//! sub-millisecond cancellation latency on slow allocation rates.
//!
//! # Failure surface and degradation
//!
//! Every governed failure is a typed [`DdError`] — never a panic, never an
//! abort.  On budget pressure the gate-application driver degrades
//! gracefully before failing: it garbage-collects the package, shrinks the
//! compute caches back to their minimum footprint, and retries the gate
//! once.  Only persistent pressure surfaces as [`DdError::MemoryOut`],
//! carrying a structured report (live nodes, approximate bytes, the op index
//! reached).  An aborted package remains fully usable: partially built nodes
//! are unreachable garbage that the next collection sweeps, and compute
//! caches only ever hold results of *completed* operations, so a re-run
//! after an abort is bit-identical to a fresh run.
//!
//! # Fault injection
//!
//! With the `fault-inject` feature, a [`FaultPlan`] forces a budget, deadline
//! or cancellation failure at an exact checkpoint count, making the
//! abort-and-recover paths deterministically testable.  The plan keeps firing
//! from its trigger point onward, so degradation retries fail too and the
//! persistent-pressure path is exercised.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default number of [`Governor::checkpoint`] calls between deadline /
/// cancellation probes (the amortized-check sizing knob; see the
/// [module docs](self)).
pub const DEFAULT_CHECK_INTERVAL: u64 = 4096;

/// A typed failure of governed decision-diagram work.
///
/// Everything the governor can interrupt — and every formerly panicking
/// misuse of the gate-application entry points — surfaces as one of these
/// variants.  The `op_index` carried by the resource variants is the
/// zero-based circuit operation being applied when the failure surfaced
/// (`None` outside circuit application, e.g. during sampler compilation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdError {
    /// A node arena outgrew the `u32` id space (more than ~4.29 billion
    /// nodes).  `arena` names the arena: `"vector"`, `"matrix"` or
    /// `"compiled"`.
    ArenaOverflow {
        /// Which arena overflowed.
        arena: &'static str,
    },
    /// The configured node or byte budget was exceeded and garbage
    /// collection could not relieve the pressure.
    MemoryOut {
        /// Allocated arena nodes (vector + matrix) when the budget tripped.
        live_nodes: u64,
        /// Approximate package footprint in bytes when the budget tripped.
        allocated_bytes: u64,
        /// The configured node budget, if any.
        node_budget: Option<u64>,
        /// The configured byte budget, if any.
        byte_budget: Option<u64>,
        /// Circuit op index being applied, if the failure surfaced there.
        op_index: Option<usize>,
    },
    /// The wall-clock deadline expired.
    Deadline {
        /// Circuit op index being applied, if the failure surfaced there.
        op_index: Option<usize>,
    },
    /// The run was cancelled through its [`CancelToken`].
    Cancelled {
        /// Circuit op index being applied, if the failure surfaced there.
        op_index: Option<usize>,
    },
    /// A non-unitary operation (measure / reset) was passed to the pure
    /// gate-application path; use `measure_qubit` / `reset_qubit` (or the
    /// trajectory engine) instead.
    NonUnitaryOperation {
        /// Display form of the offending operation.
        op: String,
    },
    /// A classically-conditioned operation was passed to the pure
    /// gate-application path; resolve the condition (trajectory engine)
    /// before applying.
    ConditionedOperation {
        /// Display form of the offending operation.
        op: String,
    },
}

impl DdError {
    /// Stamps the circuit op index onto a resource failure that does not
    /// carry one yet (leaves an already-stamped index and the non-resource
    /// variants untouched).
    #[must_use]
    pub fn with_op_index(mut self, index: usize) -> Self {
        match &mut self {
            DdError::MemoryOut { op_index, .. }
            | DdError::Deadline { op_index }
            | DdError::Cancelled { op_index } => {
                if op_index.is_none() {
                    *op_index = Some(index);
                }
            }
            DdError::ArenaOverflow { .. }
            | DdError::NonUnitaryOperation { .. }
            | DdError::ConditionedOperation { .. } => {}
        }
        self
    }
}

fn fmt_at(f: &mut fmt::Formatter<'_>, op_index: Option<usize>) -> fmt::Result {
    match op_index {
        Some(i) => write!(f, " at circuit op {i}"),
        None => Ok(()),
    }
}

impl fmt::Display for DdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdError::ArenaOverflow { arena } => {
                write!(f, "{arena} node arena overflow (u32 id space exhausted)")
            }
            DdError::MemoryOut {
                live_nodes,
                allocated_bytes,
                node_budget,
                byte_budget,
                op_index,
            } => {
                write!(
                    f,
                    "decision-diagram memory budget exceeded ({live_nodes} live nodes, \
                     ~{allocated_bytes} bytes"
                )?;
                if let Some(b) = node_budget {
                    write!(f, "; node budget {b}")?;
                }
                if let Some(b) = byte_budget {
                    write!(f, "; byte budget {b}")?;
                }
                write!(f, ")")?;
                fmt_at(f, *op_index)
            }
            DdError::Deadline { op_index } => {
                write!(f, "decision-diagram deadline expired")?;
                fmt_at(f, *op_index)
            }
            DdError::Cancelled { op_index } => {
                write!(f, "decision-diagram run cancelled")?;
                fmt_at(f, *op_index)
            }
            DdError::NonUnitaryOperation { op } => write!(
                f,
                "non-unitary operation '{op}' cannot be applied as a gate; \
                 use measure_qubit/reset_qubit"
            ),
            DdError::ConditionedOperation { op } => write!(
                f,
                "classically-conditioned operation '{op}' depends on the classical \
                 record; resolve the condition (trajectory engine) before applying"
            ),
        }
    }
}

impl Error for DdError {}

/// A shareable cooperative cancellation flag.
///
/// Clone the token, hand one clone to the governed run and keep the other;
/// calling [`cancel`](CancelToken::cancel) from any thread makes every
/// governor holding a clone fail its next amortized checkpoint with
/// [`DdError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; governed work observes it at its next checkpoint.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Which failure a [`FaultPlan`] injects.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Surface as [`DdError::MemoryOut`] (with the governor's configured
    /// budgets and the counts observed at the trigger point).
    MemoryOut,
    /// Surface as [`DdError::Deadline`].
    Deadline,
    /// Surface as [`DdError::Cancelled`].
    Cancelled,
}

/// A deterministic fault: from checkpoint number `at_count` onward, every
/// checkpoint fails with the configured [`InjectedFault`].
///
/// Firing *from* the trigger point (rather than exactly once) means
/// degradation retries hit the fault again, exercising the
/// persistent-pressure abort path.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based checkpoint count at which the fault starts firing.
    pub at_count: u64,
    /// The failure to inject.
    pub kind: InjectedFault,
}

/// Budgets, deadline and cancellation for decision-diagram work, checked at
/// amortized cost inside the package hot paths (see the [module
/// docs](self)).
///
/// The default governor is [`unlimited`](Governor::unlimited): every check
/// short-circuits on a single branch, so ungoverned workloads pay nothing.
/// Limits are added builder-style:
///
/// ```
/// use dd::{CancelToken, Governor};
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let governor = Governor::unlimited()
///     .with_node_budget(1_000_000)
///     .with_timeout(Duration::from_secs(60))
///     .with_cancel_token(token.clone());
/// ```
///
/// Cloning a governor shares the deadline and the cancellation token but
/// gives the clone a fresh checkpoint counter, so per-worker clones in the
/// trajectory engine probe the clock independently.
#[derive(Debug)]
pub struct Governor {
    node_budget: Option<u64>,
    byte_budget: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    check_interval: u64,
    /// Shared behind an `Arc` so [`worker_view`](Governor::worker_view)
    /// clones can aggregate checkpoint counts across the workers of one
    /// parallel construction region; plain [`Clone`] allocates a fresh
    /// counter (independent amortization per trajectory worker).
    counter: Arc<AtomicU64>,
    /// Cached `any limit configured` flag: the unlimited fast path.
    active: bool,
    #[cfg(feature = "fault-inject")]
    fault: Option<FaultPlan>,
}

impl Default for Governor {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Clone for Governor {
    fn clone(&self) -> Self {
        Self {
            node_budget: self.node_budget,
            byte_budget: self.byte_budget,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            check_interval: self.check_interval,
            counter: Arc::new(AtomicU64::new(0)),
            active: self.active,
            #[cfg(feature = "fault-inject")]
            fault: self.fault,
        }
    }
}

impl Governor {
    /// A governor with no limits: every checkpoint is a single branch.
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            node_budget: None,
            byte_budget: None,
            deadline: None,
            cancel: None,
            check_interval: DEFAULT_CHECK_INTERVAL,
            counter: Arc::new(AtomicU64::new(0)),
            active: false,
            #[cfg(feature = "fault-inject")]
            fault: None,
        }
    }

    /// Caps allocated arena nodes (vector + matrix combined).
    #[must_use]
    pub fn with_node_budget(mut self, nodes: u64) -> Self {
        self.node_budget = Some(nodes);
        self.refresh_active();
        self
    }

    /// Caps the approximate package footprint in bytes.
    #[must_use]
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = Some(bytes);
        self.refresh_active();
        self
    }

    /// Sets an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self.refresh_active();
        self
    }

    /// Sets the deadline `timeout` from now.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline_at(Instant::now() + timeout)
    }

    /// Attaches a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self.refresh_active();
        self
    }

    /// Sets the amortized-check interval: deadline and cancellation are
    /// probed every `interval` checkpoints (clamped to at least 1).  See the
    /// [module docs](self) for how to size it.
    #[must_use]
    pub fn with_check_interval(mut self, interval: u64) -> Self {
        self.check_interval = interval.max(1);
        self
    }

    /// Injects a deterministic fault (testing only; see [`FaultPlan`]).
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self.refresh_active();
        self
    }

    fn refresh_active(&mut self) {
        self.active = self.node_budget.is_some()
            || self.byte_budget.is_some()
            || self.deadline.is_some()
            || self.cancel.is_some();
        #[cfg(feature = "fault-inject")]
        {
            self.active = self.active || self.fault.is_some();
        }
    }

    /// Whether any limit (or injected fault) is configured.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.active
    }

    /// A view of this governor for one parallel-construction worker: unlike
    /// [`Clone`] — which hands trajectory workers an *independent* checkpoint
    /// counter — the view shares the counter, so checkpoint counts (and with
    /// them the amortized deadline/cancellation probes and any
    /// `fault-inject` trigger point) aggregate across every worker of the
    /// construction region exactly as they would in a single-threaded run.
    /// Deadline, cancellation token, budgets and fault plan are shared as
    /// always.
    #[must_use]
    pub fn worker_view(&self) -> Governor {
        Self {
            node_budget: self.node_budget,
            byte_budget: self.byte_budget,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            check_interval: self.check_interval,
            counter: Arc::clone(&self.counter),
            active: self.active,
            #[cfg(feature = "fault-inject")]
            fault: self.fault,
        }
    }

    /// The configured node budget, if any.
    #[must_use]
    pub fn node_budget(&self) -> Option<u64> {
        self.node_budget
    }

    /// The configured byte budget, if any.
    #[must_use]
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }

    /// One unit of governed work: counts the call and, every
    /// `check_interval` calls, probes the deadline and the cancellation
    /// token.  Unlimited governors return immediately.
    ///
    /// # Errors
    ///
    /// [`DdError::Deadline`] past the deadline, [`DdError::Cancelled`] once
    /// the token is raised, or the injected fault under `fault-inject`.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), DdError> {
        if !self.active {
            return Ok(());
        }
        self.checkpoint_slow()
    }

    #[cold]
    fn checkpoint_slow(&self) -> Result<(), DdError> {
        let count = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = self.fault {
            if count >= fault.at_count {
                return Err(self.injected_error(fault.kind));
            }
        }
        if count.is_multiple_of(self.check_interval) {
            self.check_now()?;
        }
        Ok(())
    }

    #[cfg(feature = "fault-inject")]
    fn injected_error(&self, kind: InjectedFault) -> DdError {
        match kind {
            InjectedFault::MemoryOut => DdError::MemoryOut {
                live_nodes: 0,
                allocated_bytes: 0,
                node_budget: self.node_budget,
                byte_budget: self.byte_budget,
                op_index: None,
            },
            InjectedFault::Deadline => DdError::Deadline { op_index: None },
            InjectedFault::Cancelled => DdError::Cancelled { op_index: None },
        }
    }

    /// Probes the deadline and the cancellation token immediately,
    /// bypassing the amortization counter (used at natural phase boundaries
    /// such as trajectory chunk ends).
    ///
    /// # Errors
    ///
    /// [`DdError::Deadline`] / [`DdError::Cancelled`] as for
    /// [`checkpoint`](Governor::checkpoint).
    pub fn check_now(&self) -> Result<(), DdError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(DdError::Cancelled { op_index: None });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(DdError::Deadline { op_index: None });
            }
        }
        Ok(())
    }

    /// Checks the node / byte budgets against the current package counts
    /// (called on unique-table misses — the only place arenas grow).
    ///
    /// # Errors
    ///
    /// [`DdError::MemoryOut`] when either budget is exceeded.
    #[inline]
    pub fn check_budget(&self, live_nodes: u64, allocated_bytes: u64) -> Result<(), DdError> {
        let node_hit = self.node_budget.is_some_and(|b| live_nodes > b);
        let byte_hit = self.byte_budget.is_some_and(|b| allocated_bytes > b);
        if node_hit || byte_hit {
            return Err(DdError::MemoryOut {
                live_nodes,
                allocated_bytes,
                node_budget: self.node_budget,
                byte_budget: self.byte_budget,
                op_index: None,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_fails() {
        let g = Governor::unlimited();
        assert!(!g.is_limited());
        for _ in 0..100_000 {
            g.checkpoint().unwrap();
        }
        g.check_now().unwrap();
        g.check_budget(u64::MAX, u64::MAX).unwrap();
    }

    #[test]
    fn node_budget_trips_on_excess() {
        let g = Governor::unlimited().with_node_budget(100);
        g.check_budget(100, 0).unwrap();
        let err = g.check_budget(101, 0).unwrap_err();
        assert!(matches!(
            err,
            DdError::MemoryOut {
                live_nodes: 101,
                node_budget: Some(100),
                ..
            }
        ));
    }

    #[test]
    fn byte_budget_trips_on_excess() {
        let g = Governor::unlimited().with_byte_budget(1 << 20);
        g.check_budget(0, 1 << 20).unwrap();
        assert!(matches!(
            g.check_budget(0, (1 << 20) + 1),
            Err(DdError::MemoryOut { .. })
        ));
    }

    #[test]
    fn expired_deadline_fails_checkpoints() {
        let g = Governor::unlimited()
            .with_deadline_at(Instant::now() - Duration::from_millis(1))
            .with_check_interval(1);
        assert_eq!(g.checkpoint(), Err(DdError::Deadline { op_index: None }));
        assert_eq!(g.check_now(), Err(DdError::Deadline { op_index: None }));
    }

    #[test]
    fn cancellation_is_observed_across_clones() {
        let token = CancelToken::new();
        let g = Governor::unlimited()
            .with_cancel_token(token.clone())
            .with_check_interval(1);
        let clone = g.clone();
        g.checkpoint().unwrap();
        token.cancel();
        assert_eq!(g.checkpoint(), Err(DdError::Cancelled { op_index: None }));
        assert_eq!(
            clone.checkpoint(),
            Err(DdError::Cancelled { op_index: None })
        );
    }

    #[test]
    fn deadline_checks_are_amortized() {
        // With an interval of 1000, the first 999 checkpoints never probe the
        // (already expired) deadline.
        let g = Governor::unlimited()
            .with_deadline_at(Instant::now() - Duration::from_millis(1))
            .with_check_interval(1000);
        for _ in 0..999 {
            g.checkpoint().unwrap();
        }
        assert!(g.checkpoint().is_err());
    }

    #[test]
    fn clones_get_fresh_counters() {
        let g = Governor::unlimited()
            .with_deadline_at(Instant::now() - Duration::from_millis(1))
            .with_check_interval(10);
        for _ in 0..9 {
            g.checkpoint().unwrap();
        }
        let clone = g.clone();
        // The original is one call from probing; the clone starts over.
        assert!(g.checkpoint().is_err());
        for _ in 0..9 {
            clone.checkpoint().unwrap();
        }
        assert!(clone.checkpoint().is_err());
    }

    #[test]
    fn worker_views_share_the_checkpoint_counter() {
        let g = Governor::unlimited()
            .with_deadline_at(Instant::now() - Duration::from_millis(1))
            .with_check_interval(10);
        let view = g.worker_view();
        // Five checkpoints on each side aggregate to ten: the tenth call —
        // wherever it lands — probes the (expired) deadline.
        for _ in 0..5 {
            g.checkpoint().unwrap();
        }
        for _ in 0..4 {
            view.checkpoint().unwrap();
        }
        assert!(view.checkpoint().is_err());
    }

    #[test]
    fn op_index_stamping_is_idempotent() {
        let err = DdError::Deadline { op_index: None }.with_op_index(7);
        assert_eq!(err, DdError::Deadline { op_index: Some(7) });
        let stamped = err.with_op_index(9);
        assert_eq!(stamped, DdError::Deadline { op_index: Some(7) });
        // Non-resource variants pass through untouched.
        let overflow = DdError::ArenaOverflow { arena: "vector" }.with_op_index(3);
        assert_eq!(overflow, DdError::ArenaOverflow { arena: "vector" });
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_faults_fire_from_their_trigger_point() {
        let g = Governor::unlimited().with_fault(FaultPlan {
            at_count: 3,
            kind: InjectedFault::Deadline,
        });
        assert!(g.is_limited());
        g.checkpoint().unwrap();
        g.checkpoint().unwrap();
        assert_eq!(g.checkpoint(), Err(DdError::Deadline { op_index: None }));
        // ... and keeps firing, so degradation retries fail too.
        assert_eq!(g.checkpoint(), Err(DdError::Deadline { op_index: None }));
    }
}

//! Gottesman–Knill stabilizer-tableau simulation of Clifford circuits.
//!
//! By the Gottesman–Knill theorem, circuits built from the Clifford gate set
//! are classically simulable in polynomial time: an `n`-qubit stabilizer
//! state is represented not by `2^n` amplitudes but by the `n` Pauli
//! generators of its stabilizer group, and every Clifford gate updates those
//! generators in `O(n)` bit operations.  This crate implements the CHP-style
//! tableau of Aaronson and Gottesman (*"Improved simulation of stabilizer
//! circuits"*): `2n` generator rows — `n` destabilizers plus `n` stabilizers
//! — stored as bit-packed X/Z matrices with a sign bit per row, so a
//! thousand-qubit Clifford circuit fits in a few hundred kilobytes and runs
//! in microseconds.
//!
//! # The Clifford gate set
//!
//! [`apply_operation`] accepts exactly the operations
//! [`circuit::Operation::is_clifford`] admits:
//!
//! * every single-qubit gate in the Clifford group: `I`, `X`, `Y`, `Z`,
//!   `H`, `S`, `Sdg`, `SqrtX`, `SqrtXdg`, `SqrtY`, `SqrtYdg`, and the
//!   parametric gates `Phase`/`Rx`/`Ry`/`Rz`/`U` whose angles are integer
//!   multiples of `pi/2` (each is resolved to a product of the tableau's
//!   `H`/`S` primitives by matrix matching against the 24 single-qubit
//!   Clifford classes, so e.g. `rz(pi/2)` runs as `S` up to global phase);
//! * singly-controlled Paulis up to a power-of-`i` phase: `CX`, `CY`, `CZ`
//!   and phase-equivalents like controlled-`Rz(pi)` (the `i^k` factor
//!   becomes an `S^k` on the control);
//! * uncontrolled `SWAP`;
//! * computational-basis [`Measure`](circuit::Operation::Measure) and
//!   [`Reset`](circuit::Operation::Reset), plus classically-
//!   [`Conditioned`](circuit::Operation::Conditioned) forms of all of the
//!   above, resolved against the shot's classical record.
//!
//! Anything else — `T`, non-dyadic rotations, multi-controlled gates,
//! permutations, amplitude damping — fails with
//! [`TableauError::NotClifford`]; callers (the `weaksim` router) fall back
//! to a dense backend.
//!
//! # Measurement semantics
//!
//! Measuring qubit `q` follows the CHP rules ([`Tableau::measure`]):
//!
//! * if some stabilizer generator anticommutes with `Z_q` (its X-bit at `q`
//!   is set — equivalently, the symplectic rank test finds `Z_q` outside
//!   the stabilizer span), the outcome is **random**: a fair bit is drawn,
//!   the anticommuting generator is replaced by `±Z_q`, and every other
//!   anticommuting row is multiplied by the replaced generator;
//! * otherwise the outcome is **deterministic**: `±Z_q` lies in the
//!   stabilizer group, and its sign — reconstructed in the scratch row from
//!   the destabilizer decomposition — is the outcome, with no state change.
//!
//! [`Tableau::reset`] is measure-then-flip, and Pauli noise channels
//! (bit/phase flip, depolarizing) are realized as **frame flips**
//! ([`Tableau::apply_noise`]): a sampled `X`/`Y`/`Z` only toggles `O(n)`
//! row signs, so noisy stabilizer trajectories stay polynomial.
//!
//! # Sampling and the stitching contract
//!
//! Terminal full-register sampling goes through
//! [`Tableau::measurement_sampler`]: the support of a stabilizer state in
//! the computational basis is an affine subspace `c XOR span(B)` over which
//! the outcome distribution is *uniform*, so the sampler extracts one
//! reference outcome `c` (a forced-zero CHP measurement sweep on a clone)
//! and a basis `B` of the X-row space of the stabilizer generators once,
//! after which every shot is `|B|` coin flips and word-XORs — independent
//! of circuit depth.
//!
//! The router's **stitching contract** is [`Tableau::as_basis_state`]: when
//! a Clifford prefix leaves the register in a computational basis state
//! `|b>` (no stabilizer generator carries an X bit), the method returns
//! `b`, and the dense backend resumes from `|b>` — bit-for-bit the state
//! the tableau ended in.  A prefix ending in superposition returns `None`
//! and the router re-runs the whole circuit densely instead; the tableau
//! result is never approximated into the dense engine.
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, Qubit};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // A 500-qubit GHZ state: far beyond dense simulation, instant here.
//! let mut ghz = Circuit::new(500);
//! ghz.h(Qubit(0));
//! for q in 1..500 {
//!     ghz.cx(Qubit(q - 1), Qubit(q));
//! }
//! let mut rng = SmallRng::seed_from_u64(7);
//! let (tab, _record) = tableau::simulate(&ghz, &mut rng)?;
//! let sampler = tab.measurement_sampler();
//! let shot = sampler.sample_words(&mut rng);
//! // All 500 bits agree: the outcome is all-zeros or all-ones.
//! let all_zeros = shot.iter().all(|&w| w == 0);
//! let all_ones = shot[..7].iter().all(|&w| w == u64::MAX) && shot[7] == (1u64 << 52) - 1;
//! assert!(all_zeros || all_ones);
//! # Ok::<(), tableau::TableauError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod apply;
mod sample;
mod state;

pub use apply::{apply_circuit, apply_operation, simulate, TableauError};
pub use sample::MeasurementSampler;
pub use state::{Pauli, Tableau};

//! The CHP tableau: bit-packed generator rows and their gate/measurement
//! update rules.

use rand::RngCore;

/// A single-qubit Pauli operator, used for noise frame flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// The identity (no flip).
    I,
    /// The bit flip `X`.
    X,
    /// The combined flip `Y`.
    Y,
    /// The phase flip `Z`.
    Z,
}

/// An `n`-qubit stabilizer state as an Aaronson–Gottesman tableau.
///
/// The tableau stores `2n + 1` generator rows — `n` destabilizers (rows
/// `0..n`), `n` stabilizers (rows `n..2n`) and one scratch row for
/// deterministic-measurement reconstruction — each as `ceil(n/64)` words of
/// X bits, the same of Z bits, and a sign bit.  Row `i` of the stabilizer
/// block is the Pauli string `(-1)^{r_i} prod_q X_q^{x_iq} Z_q^{z_iq}`.
///
/// All gate methods update every row in `O(n)` word operations; measurement
/// is `O(n^2)` in the worst (random-outcome) case.  Qubit arguments are
/// `usize` indices; every method panics if an index is out of range, which
/// the circuit-level driver ([`crate::apply_circuit`]) rules out up front.
///
/// # Examples
///
/// ```
/// use tableau::Tableau;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut tab = Tableau::zero_state(2);
/// tab.h(0);
/// tab.cx(0, 1);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let first = tab.measure(0, &mut rng);
/// // After the first (random) outcome, the second is determined.
/// assert_eq!(tab.deterministic_outcome(1), Some(first));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    num_qubits: usize,
    /// Words per row: `ceil(num_qubits / 64)`.
    words: usize,
    /// X bits, `(2n + 1) * words` words, row-major.
    x: Vec<u64>,
    /// Z bits, same layout.
    z: Vec<u64>,
    /// Sign bits, one per row (`true` = the generator carries `-1`).
    r: Vec<bool>,
}

impl Tableau {
    /// Creates the tableau of the all-zeros state `|0...0>`: destabilizer
    /// `i` is `X_i`, stabilizer `i` is `Z_i`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    #[must_use]
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "a tableau needs at least one qubit");
        let words = num_qubits.div_ceil(64);
        let rows = 2 * num_qubits + 1;
        let mut tab = Self {
            num_qubits,
            words,
            x: vec![0; rows * words],
            z: vec![0; rows * words],
            r: vec![false; rows],
        };
        for q in 0..num_qubits {
            let (w, b) = (q / 64, q % 64);
            tab.x[q * words + w] |= 1 << b; // destabilizer X_q
            tab.z[(num_qubits + q) * words + w] |= 1 << b; // stabilizer Z_q
        }
        tab
    }

    /// The number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Words per packed bitstring row (`ceil(num_qubits / 64)`), the length
    /// of the buffers [`MeasurementSampler`](crate::MeasurementSampler) and
    /// [`as_basis_state`](Self::as_basis_state) produce.
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// Approximate heap size of the tableau in bytes (the "representation
    /// size" a router reports for the stabilizer engine).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        2 * self.x.len() * 8 + self.r.len()
    }

    #[inline]
    fn bit(words: &[u64], row_base: usize, q: usize) -> bool {
        words[row_base + q / 64] >> (q % 64) & 1 == 1
    }

    #[inline]
    fn flip_bit(words: &mut [u64], row_base: usize, q: usize) {
        words[row_base + q / 64] ^= 1 << (q % 64);
    }

    #[inline]
    fn check(&self, q: usize) {
        assert!(
            q < self.num_qubits,
            "qubit {q} out of range for a {}-qubit tableau",
            self.num_qubits
        );
    }

    /// Total rows updated by gates (destabilizers + stabilizers, not the
    /// scratch row).
    #[inline]
    fn gate_rows(&self) -> usize {
        2 * self.num_qubits
    }

    /// Applies a Hadamard on `q`: swaps the X and Z columns and flips the
    /// sign where the row holds `Y_q`.
    pub fn h(&mut self, q: usize) {
        self.check(q);
        let (w, b) = (q / 64, q % 64);
        for row in 0..self.gate_rows() {
            let base = row * self.words;
            let xq = self.x[base + w] >> b & 1;
            let zq = self.z[base + w] >> b & 1;
            self.r[row] ^= xq & zq == 1;
            if xq != zq {
                self.x[base + w] ^= 1 << b;
                self.z[base + w] ^= 1 << b;
            }
        }
    }

    /// Applies the phase gate `S` on `q`.
    pub fn s(&mut self, q: usize) {
        self.check(q);
        let (w, b) = (q / 64, q % 64);
        for row in 0..self.gate_rows() {
            let base = row * self.words;
            let xq = self.x[base + w] >> b & 1;
            let zq = self.z[base + w] >> b & 1;
            self.r[row] ^= xq & zq == 1;
            self.z[base + w] ^= xq << b;
        }
    }

    /// Applies the inverse phase gate `Sdg` on `q`.
    pub fn sdg(&mut self, q: usize) {
        self.check(q);
        let (w, b) = (q / 64, q % 64);
        for row in 0..self.gate_rows() {
            let base = row * self.words;
            let xq = self.x[base + w] >> b & 1;
            let zq = self.z[base + w] >> b & 1;
            self.r[row] ^= xq & !zq & 1 == 1;
            self.z[base + w] ^= xq << b;
        }
    }

    /// Applies a Pauli frame flip on `q` — only row signs change, making
    /// Pauli noise `O(n)` ([`apply_noise`](Self::apply_noise)).
    pub fn apply_pauli(&mut self, q: usize, pauli: Pauli) {
        self.check(q);
        if pauli == Pauli::I {
            return;
        }
        let (w, b) = (q / 64, q % 64);
        for row in 0..self.gate_rows() {
            let base = row * self.words;
            let xq = self.x[base + w] >> b & 1 == 1;
            let zq = self.z[base + w] >> b & 1 == 1;
            // Conjugating by X flips rows containing Z_q or Y_q; by Z flips
            // X_q or Y_q; by Y flips X_q or Z_q.
            self.r[row] ^= match pauli {
                Pauli::I => false,
                Pauli::X => zq,
                Pauli::Y => xq != zq,
                Pauli::Z => xq,
            };
        }
    }

    /// Applies `X` on `q` (alias of [`apply_pauli`](Self::apply_pauli)).
    pub fn x(&mut self, q: usize) {
        self.apply_pauli(q, Pauli::X);
    }

    /// Applies `Y` on `q`.
    pub fn y(&mut self, q: usize) {
        self.apply_pauli(q, Pauli::Y);
    }

    /// Applies `Z` on `q`.
    pub fn z(&mut self, q: usize) {
        self.apply_pauli(q, Pauli::Z);
    }

    /// Applies a CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t` or either index is out of range.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.check(c);
        self.check(t);
        assert!(c != t, "CX control and target must differ");
        let (wc, bc) = (c / 64, c % 64);
        let (wt, bt) = (t / 64, t % 64);
        for row in 0..self.gate_rows() {
            let base = row * self.words;
            let xc = self.x[base + wc] >> bc & 1;
            let zc = self.z[base + wc] >> bc & 1;
            let xt = self.x[base + wt] >> bt & 1;
            let zt = self.z[base + wt] >> bt & 1;
            self.r[row] ^= xc & zt & (xt ^ zc ^ 1) == 1;
            self.x[base + wt] ^= xc << bt;
            self.z[base + wc] ^= zt << bc;
        }
    }

    /// Applies a controlled-Z between `a` and `b` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.check(a);
        self.check(b);
        assert!(a != b, "CZ qubits must differ");
        let (wa, ba) = (a / 64, a % 64);
        let (wb, bb) = (b / 64, b % 64);
        for row in 0..self.gate_rows() {
            let base = row * self.words;
            let xa = self.x[base + wa] >> ba & 1;
            let za = self.z[base + wa] >> ba & 1;
            let xb = self.x[base + wb] >> bb & 1;
            let zb = self.z[base + wb] >> bb & 1;
            self.r[row] ^= xa & xb & (za ^ zb) == 1;
            self.z[base + wb] ^= xa << bb;
            self.z[base + wa] ^= xb << ba;
        }
    }

    /// Swaps qubits `a` and `b` (a column swap; no sign changes).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.check(a);
        self.check(b);
        if a == b {
            return;
        }
        for row in 0..self.gate_rows() {
            let base = row * self.words;
            let xa = Self::bit(&self.x, base, a);
            let xb = Self::bit(&self.x, base, b);
            if xa != xb {
                Self::flip_bit(&mut self.x, base, a);
                Self::flip_bit(&mut self.x, base, b);
            }
            let za = Self::bit(&self.z, base, a);
            let zb = Self::bit(&self.z, base, b);
            if za != zb {
                Self::flip_bit(&mut self.z, base, a);
                Self::flip_bit(&mut self.z, base, b);
            }
        }
    }

    /// Multiplies generator row `h` by generator row `i` (the CHP `rowsum`),
    /// tracking the `i^k` phase bit-parallel across the packed words.
    fn rowsum(&mut self, h: usize, i: usize) {
        let hb = h * self.words;
        let ib = i * self.words;
        // Phase exponent of i (mod 4) accumulated by the Pauli products.
        let mut plus: u32 = 0;
        let mut minus: u32 = 0;
        for w in 0..self.words {
            let x1 = self.x[ib + w];
            let z1 = self.z[ib + w];
            let x2 = self.x[hb + w];
            let z2 = self.z[hb + w];
            // g(x1, z1, x2, z2) per Aaronson–Gottesman, vectorized: masks of
            // positions contributing +1 and -1 to the exponent.
            let p = (x1 & z1 & z2 & !x2) | (x1 & !z1 & z2 & x2) | (!x1 & z1 & x2 & !z2);
            let m = (x1 & z1 & x2 & !z2) | (x1 & !z1 & z2 & !x2) | (!x1 & z1 & x2 & z2);
            plus += p.count_ones();
            minus += m.count_ones();
            self.x[hb + w] = x2 ^ x1;
            self.z[hb + w] = z2 ^ z1;
        }
        let sum = 2 * i64::from(self.r[h]) + 2 * i64::from(self.r[i]) + i64::from(plus)
            - i64::from(minus);
        // The phase is even (+1/-1) whenever rows h and i commute — always
        // true for the stabilizer and scratch rows whose signs are read.
        // A destabilizer multiplied by its paired stabilizer picks up an odd
        // i-power; destabilizer signs are never consumed, so collapsing the
        // i^1/i^3 distinction into the sign bit is harmless.
        self.r[h] = sum.rem_euclid(4) >= 2;
    }

    /// Index of a stabilizer row whose `X` bit at `q` is set, i.e. a
    /// generator anticommuting with `Z_q` — the symplectic-rank witness that
    /// a `Z_q` measurement is random.  `None` means deterministic.
    fn anticommuting_stabilizer(&self, q: usize) -> Option<usize> {
        (self.num_qubits..2 * self.num_qubits).find(|&row| Self::bit(&self.x, row * self.words, q))
    }

    /// Measures qubit `q` in the computational basis, drawing a fair bit
    /// from `rng` when the outcome is random, and collapses the state.
    /// Returns the outcome.
    pub fn measure<R: RngCore + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        self.check(q);
        match self.anticommuting_stabilizer(q) {
            Some(p) => {
                let outcome = rng.next_u64() & 1 == 1;
                self.collapse(q, p, outcome);
                outcome
            }
            None => self.reconstruct_deterministic(q),
        }
    }

    /// Measures qubit `q`, forcing the outcome to `forced` when it is
    /// random (used by the reference sweep of
    /// [`measurement_sampler`](Self::measurement_sampler)); deterministic
    /// outcomes are returned as-is.
    pub fn measure_forced(&mut self, q: usize, forced: bool) -> bool {
        self.check(q);
        match self.anticommuting_stabilizer(q) {
            Some(p) => {
                self.collapse(q, p, forced);
                forced
            }
            None => self.reconstruct_deterministic(q),
        }
    }

    /// Returns `Some(outcome)` if measuring `q` would be deterministic
    /// (i.e. `Z_q` lies in the stabilizer span), without touching the state.
    #[must_use]
    pub fn deterministic_outcome(&mut self, q: usize) -> Option<bool> {
        self.check(q);
        if self.anticommuting_stabilizer(q).is_some() {
            None
        } else {
            Some(self.reconstruct_deterministic(q))
        }
    }

    /// The random-outcome collapse: every other anticommuting row absorbs
    /// row `p`, row `p` moves to the destabilizer block, and the stabilizer
    /// slot becomes `(-1)^outcome Z_q`.
    fn collapse(&mut self, q: usize, p: usize, outcome: bool) {
        for row in 0..self.gate_rows() {
            if row != p && Self::bit(&self.x, row * self.words, q) {
                self.rowsum(row, p);
            }
        }
        // Row p becomes the destabilizer of the measurement.
        let dest = p - self.num_qubits;
        for w in 0..self.words {
            self.x[dest * self.words + w] = self.x[p * self.words + w];
            self.z[dest * self.words + w] = self.z[p * self.words + w];
            self.x[p * self.words + w] = 0;
            self.z[p * self.words + w] = 0;
        }
        self.r[dest] = self.r[p];
        Self::flip_bit(&mut self.z, p * self.words, q);
        self.r[p] = outcome;
    }

    /// The deterministic outcome of `Z_q`: accumulate, in the scratch row,
    /// the stabilizer rows matching the destabilizers that anticommute with
    /// `Z_q`; the resulting sign is the outcome.
    fn reconstruct_deterministic(&mut self, q: usize) -> bool {
        let scratch = 2 * self.num_qubits;
        let base = scratch * self.words;
        for w in 0..self.words {
            self.x[base + w] = 0;
            self.z[base + w] = 0;
        }
        self.r[scratch] = false;
        for i in 0..self.num_qubits {
            if Self::bit(&self.x, i * self.words, q) {
                self.rowsum(scratch, i + self.num_qubits);
            }
        }
        self.r[scratch]
    }

    /// Resets qubit `q` to `|0>`: measure, then flip on outcome `1`.
    pub fn reset<R: RngCore + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure(q, rng) {
            self.x(q);
        }
    }

    /// Realizes one shot of a Pauli noise channel on `q` as a frame flip:
    /// with probability `p_x`/`p_y`/`p_z` applies `X`/`Y`/`Z` (at most one;
    /// the probabilities must sum to at most 1).  Returns the Pauli applied.
    ///
    /// Bit flip is `(p, 0, 0)`, phase flip `(0, 0, p)` and depolarizing
    /// strength `p` is `(p/4, p/4, p/4)` — matching the branch
    /// probabilities of [`circuit::NoiseChannel`].
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are not in `[0, 1]` or sum above 1.
    pub fn apply_noise<R: RngCore + ?Sized>(
        &mut self,
        q: usize,
        (p_x, p_y, p_z): (f64, f64, f64),
        rng: &mut R,
    ) -> Pauli {
        assert!(
            p_x >= 0.0 && p_y >= 0.0 && p_z >= 0.0 && p_x + p_y + p_z <= 1.0 + 1e-12,
            "Pauli branch probabilities must form a sub-distribution"
        );
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let pauli = if u < p_x {
            Pauli::X
        } else if u < p_x + p_y {
            Pauli::Y
        } else if u < p_x + p_y + p_z {
            Pauli::Z
        } else {
            Pauli::I
        };
        self.apply_pauli(q, pauli);
        pauli
    }

    /// Returns the basis state `|b>` the tableau represents, as
    /// `words_per_row` packed little-endian words (qubit `q` at word
    /// `q / 64`, bit `q % 64`) — or `None` if the state is in superposition
    /// (some stabilizer generator carries an X bit, so some qubit would
    /// measure randomly).
    ///
    /// This is the router's stitching contract: a `Some(b)` is exact, and a
    /// dense backend seeded with `|b>` continues bit-for-bit from the
    /// tableau's state.
    #[must_use]
    pub fn as_basis_state(&mut self) -> Option<Vec<u64>> {
        for row in self.num_qubits..2 * self.num_qubits {
            let base = row * self.words;
            if self.x[base..base + self.words].iter().any(|&w| w != 0) {
                return None;
            }
        }
        let mut out = vec![0u64; self.words];
        for q in 0..self.num_qubits {
            if self.reconstruct_deterministic(q) {
                out[q / 64] |= 1 << (q % 64);
            }
        }
        Some(out)
    }

    /// Builds the terminal full-register sampler; see
    /// [`MeasurementSampler`](crate::MeasurementSampler).  The tableau
    /// itself is not modified (the collapsing sweep runs on a clone).
    #[must_use]
    pub fn measurement_sampler(&self) -> crate::MeasurementSampler {
        crate::MeasurementSampler::new(self)
    }

    /// The X-bit words of stabilizer row `n + i` (used by the sampler's
    /// basis extraction).
    pub(crate) fn stabilizer_x_row(&self, i: usize) -> &[u64] {
        let base = (self.num_qubits + i) * self.words;
        &self.x[base..base + self.words]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn zero_state_measures_all_zero() {
        let mut tab = Tableau::zero_state(5);
        let mut rng = rng(1);
        for q in 0..5 {
            assert_eq!(tab.deterministic_outcome(q), Some(false));
            assert!(!tab.measure(q, &mut rng));
        }
    }

    #[test]
    fn x_flips_the_measured_bit() {
        let mut tab = Tableau::zero_state(3);
        tab.x(1);
        let mut rng = rng(2);
        assert!(!tab.measure(0, &mut rng));
        assert!(tab.measure(1, &mut rng));
        assert!(!tab.measure(2, &mut rng));
    }

    #[test]
    fn hadamard_outcomes_are_random_then_stable() {
        let mut rng = rng(3);
        let mut zeros = 0;
        for trial in 0..200 {
            let mut tab = Tableau::zero_state(1);
            tab.h(0);
            assert_eq!(tab.deterministic_outcome(0), None, "H|0> is random");
            let outcome = tab.measure(0, &mut rng);
            // Re-measuring gives the same answer: the state collapsed.
            assert_eq!(tab.deterministic_outcome(0), Some(outcome), "trial {trial}");
            if !outcome {
                zeros += 1;
            }
        }
        assert!((60..=140).contains(&zeros), "zeros = {zeros}");
    }

    #[test]
    fn ghz_correlations() {
        let mut rng = rng(4);
        for _ in 0..100 {
            let mut tab = Tableau::zero_state(3);
            tab.h(0);
            tab.cx(0, 1);
            tab.cx(1, 2);
            let a = tab.measure(0, &mut rng);
            assert_eq!(tab.measure(1, &mut rng), a);
            assert_eq!(tab.measure(2, &mut rng), a);
        }
    }

    #[test]
    fn s_gate_composition_shifts_phases() {
        // H S S H |0> = H Z H |0> = X |0> = |1>.
        let mut tab = Tableau::zero_state(1);
        tab.h(0);
        tab.s(0);
        tab.s(0);
        tab.h(0);
        assert_eq!(tab.deterministic_outcome(0), Some(true));
        // S Sdg = I.
        let mut tab = Tableau::zero_state(1);
        tab.h(0);
        tab.s(0);
        tab.sdg(0);
        tab.h(0);
        assert_eq!(tab.deterministic_outcome(0), Some(false));
    }

    #[test]
    fn cz_matches_h_cx_h() {
        // Compare CZ against its H-conjugated CX decomposition on a state
        // that exercises signs: (H ⊗ H)|00> then CZ, then Bell-basis checks.
        let mut a = Tableau::zero_state(2);
        let mut b = Tableau::zero_state(2);
        for tab in [&mut a, &mut b] {
            tab.h(0);
            tab.h(1);
            tab.s(0);
            tab.s(1);
        }
        a.cz(0, 1);
        b.h(1);
        b.cx(0, 1);
        b.h(1);
        assert_eq!(a, b);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut tab = Tableau::zero_state(2);
        tab.x(0);
        tab.swap(0, 1);
        let mut rng = rng(5);
        assert!(!tab.measure(0, &mut rng));
        assert!(tab.measure(1, &mut rng));
        // Swap is equivalent to three alternating CX.
        let mut a = Tableau::zero_state(2);
        let mut b = Tableau::zero_state(2);
        for tab in [&mut a, &mut b] {
            tab.h(0);
            tab.s(0);
            tab.cx(0, 1);
        }
        a.swap(0, 1);
        b.cx(0, 1);
        b.cx(1, 0);
        b.cx(0, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn pauli_frame_flips_change_signs_only() {
        let mut tab = Tableau::zero_state(2);
        tab.h(0);
        tab.cx(0, 1);
        let before = tab.clone();
        tab.apply_pauli(0, Pauli::Z);
        assert_eq!(tab.x, before.x, "Z must not touch the X matrix");
        assert_eq!(tab.z, before.z, "Z must not touch the Z matrix");
        assert_ne!(tab.r, before.r, "Z flips signs on a Bell state");
        // Y = iXZ: applying X then Z matches Y up to (unseen) global phase.
        let mut via_y = before.clone();
        via_y.y(0);
        let mut via_xz = before.clone();
        via_xz.z(0);
        via_xz.x(0);
        assert_eq!(via_y, via_xz);
    }

    #[test]
    fn reset_forces_zero() {
        let mut rng = rng(6);
        for _ in 0..50 {
            let mut tab = Tableau::zero_state(2);
            tab.h(0);
            tab.cx(0, 1);
            tab.reset(0, &mut rng);
            assert_eq!(tab.deterministic_outcome(0), Some(false));
        }
    }

    #[test]
    fn noise_channel_branch_statistics() {
        let mut rng = rng(7);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            let mut tab = Tableau::zero_state(1);
            let p = tab.apply_noise(0, (0.1, 0.2, 0.3), &mut rng);
            counts[match p {
                Pauli::I => 0,
                Pauli::X => 1,
                Pauli::Y => 2,
                Pauli::Z => 3,
            }] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| f64::from(c) / 40_000.0).collect();
        assert!((freqs[0] - 0.4).abs() < 0.02, "{freqs:?}");
        assert!((freqs[1] - 0.1).abs() < 0.02, "{freqs:?}");
        assert!((freqs[2] - 0.2).abs() < 0.02, "{freqs:?}");
        assert!((freqs[3] - 0.3).abs() < 0.02, "{freqs:?}");
    }

    #[test]
    fn bit_and_phase_noise_act_on_outcomes() {
        let mut rng = rng(8);
        // A certain bit flip on |0> measures 1.
        let mut tab = Tableau::zero_state(1);
        tab.apply_noise(0, (1.0, 0.0, 0.0), &mut rng);
        assert_eq!(tab.deterministic_outcome(0), Some(true));
        // A certain phase flip between two Hadamards flips the outcome:
        // H Z H = X.
        let mut tab = Tableau::zero_state(1);
        tab.h(0);
        tab.apply_noise(0, (0.0, 0.0, 1.0), &mut rng);
        tab.h(0);
        assert_eq!(tab.deterministic_outcome(0), Some(true));
    }

    #[test]
    fn basis_state_extraction() {
        let mut tab = Tableau::zero_state(3);
        tab.x(0);
        tab.x(2);
        assert_eq!(tab.as_basis_state(), Some(vec![0b101]));
        // Superpositions have no basis-state form.
        tab.h(1);
        assert_eq!(tab.as_basis_state(), None);
        // Collapsing restores it.
        let bit = tab.measure(1, &mut rng(9));
        let expected = 0b101 | u64::from(bit) << 1;
        assert_eq!(tab.as_basis_state(), Some(vec![expected]));
    }

    #[test]
    fn wide_registers_cross_word_boundaries() {
        // 130 qubits = 3 words; entangle across the word boundary.
        let mut tab = Tableau::zero_state(130);
        tab.h(0);
        for q in 1..130 {
            tab.cx(q - 1, q);
        }
        let mut rng = rng(10);
        let first = tab.measure(63, &mut rng);
        assert_eq!(tab.measure(64, &mut rng), first);
        assert_eq!(tab.measure(129, &mut rng), first);
        assert_eq!(tab.measure(0, &mut rng), first);
        let words = tab.as_basis_state().unwrap();
        let expected = if first {
            vec![u64::MAX, u64::MAX, 0b11]
        } else {
            vec![0, 0, 0]
        };
        assert_eq!(words, expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        Tableau::zero_state(2).h(5);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn cx_rejects_equal_qubits() {
        Tableau::zero_state(2).cx(1, 1);
    }
}

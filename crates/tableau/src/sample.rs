//! Terminal full-register sampling from a stabilizer state.

use crate::Tableau;
use rand::RngCore;

/// A prepared sampler for full-register computational-basis measurements of
/// a stabilizer state.
///
/// The support of an `n`-qubit stabilizer state in the computational basis
/// is an affine subspace `c XOR span(B)` of `GF(2)^n`, where `B` is any
/// basis of the row space of the X-parts of the stabilizer generators
/// (each generator with X-part `v` maps a support element `|b>` to
/// `|b XOR v>` up to phase), and the outcome distribution is **uniform**
/// over that subspace.  Construction therefore does the expensive work
/// once — a forced-zero CHP measurement sweep on a clone to obtain the
/// reference element `c`, and a Gaussian elimination to obtain `B` — after
/// which every shot is `|B|` coin flips and `|B|` word-XORs, independent of
/// circuit depth and of how many shots are drawn.
///
/// # Examples
///
/// ```
/// use tableau::Tableau;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut tab = Tableau::zero_state(2);
/// tab.h(0);
/// tab.cx(0, 1);
/// let sampler = tab.measurement_sampler();
/// let mut rng = SmallRng::seed_from_u64(3);
/// for _ in 0..32 {
///     let shot = sampler.sample_u64(&mut rng);
///     assert!(shot == 0b00 || shot == 0b11);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MeasurementSampler {
    num_qubits: usize,
    words: usize,
    /// One support element `c`, packed little-endian.
    reference: Vec<u64>,
    /// Independent XOR offsets spanning the support, row-reduced.
    basis: Vec<Vec<u64>>,
}

impl MeasurementSampler {
    /// Builds the sampler from a tableau (which is cloned, not modified).
    #[must_use]
    pub(crate) fn new(tab: &Tableau) -> Self {
        let num_qubits = tab.num_qubits();
        let words = tab.words_per_row();

        // Reference support element: collapse a clone with all random
        // outcomes forced to 0.  The result is a valid (maximum-likelihood-
        // equivalent, since the distribution is uniform) outcome.
        let mut probe = tab.clone();
        let mut reference = vec![0u64; words];
        for q in 0..num_qubits {
            if probe.measure_forced(q, false) {
                reference[q / 64] |= 1 << (q % 64);
            }
        }

        // Basis of the X-row space of the stabilizer generators, by Gaussian
        // elimination over GF(2).
        let mut basis: Vec<Vec<u64>> = Vec::new();
        let mut pivots: Vec<usize> = Vec::new();
        for i in 0..num_qubits {
            let mut row = tab.stabilizer_x_row(i).to_vec();
            for (vec, &p) in basis.iter().zip(&pivots) {
                if row[p / 64] >> (p % 64) & 1 == 1 {
                    for (r, v) in row.iter_mut().zip(vec) {
                        *r ^= v;
                    }
                }
            }
            if let Some(p) = first_set_bit(&row) {
                basis.push(row);
                pivots.push(p);
            }
        }

        Self {
            num_qubits,
            words,
            reference,
            basis,
        }
    }

    /// The register width in qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The dimension of the support subspace — the number of random bits
    /// each shot consumes.
    #[must_use]
    pub fn support_dimension(&self) -> usize {
        self.basis.len()
    }

    /// Heap bytes held by the reference element and the basis rows — what
    /// an artifact cache charges against its byte budget for a retained
    /// sampler.  Polynomial: at most `(n + 1) * ceil(n/64)` words.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        (1 + self.basis.len()) * self.words * std::mem::size_of::<u64>()
    }

    /// Draws one full-register shot as `ceil(n/64)` packed little-endian
    /// words (qubit `q` at word `q / 64`, bit `q % 64`).
    #[must_use]
    pub fn sample_words<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        let mut out = self.reference.clone();
        self.sample_into(&mut out, rng);
        out
    }

    /// Draws one shot into `out` (reused across calls to avoid allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the packed width.
    pub fn sample_into<R: RngCore + ?Sized>(&self, out: &mut [u64], rng: &mut R) {
        assert_eq!(out.len(), self.words, "output buffer has the wrong width");
        out.copy_from_slice(&self.reference);
        // One RNG word covers 64 inclusion coins; refill as needed.
        let mut coins = 0u64;
        let mut left = 0u32;
        for vec in &self.basis {
            if left == 0 {
                coins = rng.next_u64();
                left = 64;
            }
            if coins & 1 == 1 {
                for (o, v) in out.iter_mut().zip(vec) {
                    *o ^= v;
                }
            }
            coins >>= 1;
            left -= 1;
        }
    }

    /// Draws one shot and returns its low 64 bits — the full outcome when
    /// `num_qubits <= 64`, and the documented truncation the router's
    /// `u64`-keyed histograms use beyond that.
    #[must_use]
    pub fn sample_u64<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.basis.is_empty() {
            return self.reference[0];
        }
        let mut out = self.reference.clone();
        self.sample_into(&mut out, rng);
        out[0]
    }

    /// Serializes the reference element and basis rows into `out` as
    /// little-endian plain data — the payload format of the `weaksim`
    /// artifact-cache snapshot.
    pub fn encode_snapshot(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.num_qubits as u64).to_le_bytes());
        out.extend_from_slice(&(self.basis.len() as u64).to_le_bytes());
        for word in &self.reference {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for row in &self.basis {
            for word in row {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
    }

    /// Reconstructs a sampler from [`encode_snapshot`](Self::encode_snapshot)
    /// bytes, validating the packed-width invariants the draw loop relies on
    /// (at least one reference word, a basis of at most `num_qubits` rows,
    /// and an exact payload length).  Returns `None` for any truncated or
    /// inconsistent payload — a corrupted snapshot section must never panic
    /// a loader.
    #[must_use]
    pub fn decode_snapshot(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let num_qubits = usize::try_from(u64::from_le_bytes(bytes[..8].try_into().ok()?)).ok()?;
        let rows = usize::try_from(u64::from_le_bytes(bytes[8..16].try_into().ok()?)).ok()?;
        if num_qubits == 0 || rows > num_qubits {
            return None;
        }
        let words = num_qubits.div_ceil(64);
        let expected = rows.checked_add(1)?.checked_mul(words)?.checked_mul(8)?;
        if bytes.len() - 16 != expected {
            return None;
        }
        let mut read_words = bytes[16..]
            .chunks_exact(8)
            .map(|chunk| chunk.try_into().map(u64::from_le_bytes));
        let mut next_row = |count: usize| -> Option<Vec<u64>> {
            (0..count)
                .map(|_| read_words.next()?.ok())
                .collect::<Option<Vec<u64>>>()
        };
        let reference = next_row(words)?;
        let basis = (0..rows)
            .map(|_| next_row(words))
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            num_qubits,
            words,
            reference,
            basis,
        })
    }
}

fn first_set_bit(words: &[u64]) -> Option<usize> {
    words
        .iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn basis_state_has_zero_dimensional_support() {
        let mut tab = Tableau::zero_state(3);
        tab.x(1);
        let sampler = tab.measurement_sampler();
        assert_eq!(sampler.support_dimension(), 0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(sampler.sample_u64(&mut rng), 0b010);
        }
    }

    #[test]
    fn uniform_superposition_covers_all_outcomes() {
        let mut tab = Tableau::zero_state(3);
        for q in 0..3 {
            tab.h(q);
        }
        let sampler = tab.measurement_sampler();
        assert_eq!(sampler.support_dimension(), 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        let shots = 8000;
        for _ in 0..shots {
            counts[sampler.sample_u64(&mut rng) as usize] += 1;
        }
        for (outcome, &c) in counts.iter().enumerate() {
            let f = f64::from(c) / f64::from(shots);
            assert!((f - 0.125).abs() < 0.02, "outcome {outcome}: {f}");
        }
    }

    #[test]
    fn ghz_support_is_one_dimensional() {
        let mut tab = Tableau::zero_state(4);
        tab.h(0);
        for q in 1..4 {
            tab.cx(q - 1, q);
        }
        let sampler = tab.measurement_sampler();
        assert_eq!(sampler.support_dimension(), 1);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ones = 0u32;
        for _ in 0..2000 {
            let shot = sampler.sample_u64(&mut rng);
            assert!(shot == 0 || shot == 0b1111, "shot {shot:b}");
            if shot != 0 {
                ones += 1;
            }
        }
        assert!((700..=1300).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn sampler_matches_chp_measurement_distribution() {
        // A state with both deterministic and correlated-random qubits:
        // q0 in |1>, Bell pair on (q1, q2).
        let build = || {
            let mut tab = Tableau::zero_state(3);
            tab.x(0);
            tab.h(1);
            tab.cx(1, 2);
            tab
        };
        let sampler = build().measurement_sampler();
        let mut rng = SmallRng::seed_from_u64(4);
        let shots = 4000;
        let mut fast = [0u32; 8];
        for _ in 0..shots {
            fast[sampler.sample_u64(&mut rng) as usize] += 1;
        }
        let mut slow = [0u32; 8];
        for _ in 0..shots {
            let mut tab = build();
            let mut shot = 0usize;
            for q in 0..3 {
                shot |= usize::from(tab.measure(q, &mut rng)) << q;
            }
            slow[shot] += 1;
        }
        for outcome in 0..8 {
            let f = f64::from(fast[outcome]) / f64::from(shots);
            let s = f64::from(slow[outcome]) / f64::from(shots);
            assert!((f - s).abs() < 0.04, "outcome {outcome}: fast {f} slow {s}");
        }
        // Support: q0 fixed to 1, (q1, q2) correlated => outcomes 0b001, 0b111.
        assert_eq!(fast[0b001] + fast[0b111], shots);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut tab = Tableau::zero_state(70); // two packed words
        tab.h(0);
        for q in 1..70 {
            tab.cx(q - 1, q);
        }
        tab.x(69);
        let sampler = tab.measurement_sampler();
        let mut bytes = Vec::new();
        sampler.encode_snapshot(&mut bytes);
        let decoded = MeasurementSampler::decode_snapshot(&bytes).expect("round trip");
        assert_eq!(decoded.num_qubits(), sampler.num_qubits());
        assert_eq!(decoded.support_dimension(), sampler.support_dimension());
        let mut a = SmallRng::seed_from_u64(6);
        let mut b = SmallRng::seed_from_u64(6);
        for _ in 0..200 {
            assert_eq!(sampler.sample_words(&mut a), decoded.sample_words(&mut b));
        }
    }

    #[test]
    fn snapshot_decode_rejects_corruption_without_panicking() {
        let mut tab = Tableau::zero_state(5);
        tab.h(0);
        tab.cx(0, 1);
        let sampler = tab.measurement_sampler();
        let mut bytes = Vec::new();
        sampler.encode_snapshot(&mut bytes);
        assert!(MeasurementSampler::decode_snapshot(&bytes).is_some());
        for len in 0..bytes.len() {
            assert!(MeasurementSampler::decode_snapshot(&bytes[..len]).is_none());
        }
        // A basis larger than the register is structurally impossible.
        let mut bad_rows = bytes;
        bad_rows[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(MeasurementSampler::decode_snapshot(&bad_rows).is_none());
    }

    #[test]
    fn sample_into_reuses_buffers_across_word_boundaries() {
        let mut tab = Tableau::zero_state(100);
        tab.h(0);
        for q in 1..100 {
            tab.cx(q - 1, q);
        }
        let sampler = tab.measurement_sampler();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = vec![0u64; 2];
        for _ in 0..50 {
            sampler.sample_into(&mut buf, &mut rng);
            let all_zeros = buf == [0, 0];
            let all_ones = buf == [u64::MAX, (1u64 << 36) - 1];
            assert!(all_zeros || all_ones, "{buf:?}");
        }
    }
}

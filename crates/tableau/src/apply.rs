//! Lowering [`circuit::Operation`]s onto the tableau primitives.
//!
//! Named Clifford gates map directly onto [`Tableau`] methods.  Everything
//! else — `sqrt(X)`-family gates, parametric rotations at multiples of
//! `pi/2`, generic `U` gates on the grid — is resolved by **matrix
//! matching**: the gate's 2×2 unitary is canonicalized up to global phase
//! and looked up in a table of the 24 single-qubit Clifford classes, built
//! once by breadth-first closure of the `{H, S}` generators.  Controlled
//! gates are matched against the sixteen matrices `i^k P` (`k` in `0..4`,
//! `P` a Pauli); the phase becomes an `S^k` on the control and the Pauli a
//! `CX`/`CY`/`CZ`.  Matching is exact within [`mathkit::DEFAULT_TOLERANCE`],
//! so the lowering can never silently approximate a non-Clifford gate.

use crate::state::Tableau;
use circuit::{Circuit, Operation};
use mathkit::{Complex, DEFAULT_TOLERANCE};
use rand::RngCore;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Error lowering an operation onto the stabilizer formalism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableauError {
    /// The operation is outside the Clifford gate set the tableau engine
    /// implements (see the crate docs for the exact alphabet).
    NotClifford {
        /// Position of the operation in the circuit (0 for single-operation
        /// application).
        op_index: usize,
        /// Rendered form of the offending operation.
        op: String,
    },
    /// The operation addresses a qubit beyond the tableau register.
    QubitOutOfRange {
        /// Position of the operation in the circuit.
        op_index: usize,
        /// The out-of-range qubit index.
        qubit: usize,
        /// The tableau register width.
        num_qubits: usize,
    },
}

impl fmt::Display for TableauError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableauError::NotClifford { op_index, op } => {
                write!(f, "operation {op_index} (`{op}`) is not Clifford")
            }
            TableauError::QubitOutOfRange {
                op_index,
                qubit,
                num_qubits,
            } => write!(
                f,
                "operation {op_index} addresses qubit {qubit} of a {num_qubits}-qubit tableau"
            ),
        }
    }
}

impl std::error::Error for TableauError {}

/// The tableau primitives a single-qubit Clifford class lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prim {
    H,
    S,
}

/// Quantized canonical form of a 2×2 unitary, global phase removed: the
/// lookup key of the Clifford class table.
fn canonical_key(m: &[[Complex; 2]; 2]) -> Option<[i64; 8]> {
    // Rotate by the conjugate phase of the first entry of non-negligible
    // magnitude, making it real positive; quantize at 1e6 (entries of
    // canonicalized Cliffords are separated by ~0.2, tolerances are 1e-10).
    let flat = [m[0][0], m[0][1], m[1][0], m[1][1]];
    let lead = flat.iter().find(|c| c.norm() > 0.25)?;
    let rot = lead.conj() * (1.0 / lead.norm());
    let mut key = [0i64; 8];
    for (i, c) in flat.iter().enumerate() {
        let r = *c * rot;
        // `f64 as i64` saturates; entries are in [-1, 1] so this is exact.
        #[allow(clippy::cast_possible_truncation)]
        {
            key[2 * i] = (r.re * 1e6).round() as i64;
            key[2 * i + 1] = (r.im * 1e6).round() as i64;
        }
    }
    Some(key)
}

fn mat_mul(a: &[[Complex; 2]; 2], b: &[[Complex; 2]; 2]) -> [[Complex; 2]; 2] {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, entry) in row.iter_mut().enumerate() {
            *entry = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// The 24 single-qubit Clifford classes as canonical keys, each mapped to a
/// shortest `{H, S}` word realizing it (applied left-to-right in time).
fn clifford_table() -> &'static HashMap<[i64; 8], Vec<Prim>> {
    static TABLE: OnceLock<HashMap<[i64; 8], Vec<Prim>>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let h_mat = circuit::OneQubitGate::H.matrix();
        let s_mat = circuit::OneQubitGate::S.matrix();
        let identity = circuit::OneQubitGate::I.matrix();
        let mut table = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        if let Some(key) = canonical_key(&identity) {
            table.insert(key, Vec::new());
            queue.push_back((identity, Vec::new()));
        }
        // BFS over left-multiplication: appending a primitive to the word
        // applies it after the existing ones, i.e. multiplies on the left.
        // First-in-first-out order guarantees each class gets a shortest word.
        while let Some((mat, word)) = queue.pop_front() {
            for (prim, gen) in [(Prim::H, &h_mat), (Prim::S, &s_mat)] {
                let next = mat_mul(gen, &mat);
                let Some(key) = canonical_key(&next) else {
                    continue;
                };
                if let std::collections::hash_map::Entry::Vacant(entry) = table.entry(key) {
                    let mut next_word = word.clone();
                    next_word.push(prim);
                    entry.insert(next_word.clone());
                    queue.push_back((next, next_word));
                }
            }
        }
        table
    })
}

/// Applies an uncontrolled single-qubit gate, or reports `None` if it is
/// outside the Clifford group.
fn apply_one_qubit(tab: &mut Tableau, gate: &circuit::OneQubitGate, q: usize) -> Option<()> {
    use circuit::OneQubitGate as G;
    // Fast path: named gates with a dedicated tableau update.
    match gate {
        G::I => return Some(()),
        G::X => {
            tab.x(q);
            return Some(());
        }
        G::Y => {
            tab.y(q);
            return Some(());
        }
        G::Z => {
            tab.z(q);
            return Some(());
        }
        G::H => {
            tab.h(q);
            return Some(());
        }
        G::S => {
            tab.s(q);
            return Some(());
        }
        G::Sdg => {
            tab.sdg(q);
            return Some(());
        }
        G::T | G::Tdg => return None,
        _ => {}
    }
    let word = clifford_table().get(&canonical_key(&gate.matrix())?)?;
    for prim in word {
        match prim {
            Prim::H => tab.h(q),
            Prim::S => tab.s(q),
        }
    }
    Some(())
}

/// Matches `m` exactly (not up to phase — the phase of the base matrix is
/// observable under control) against `i^k P` and returns `(k, P)`.
fn as_phased_pauli(m: &[[Complex; 2]; 2]) -> Option<(u32, circuit::OneQubitGate)> {
    use circuit::OneQubitGate as G;
    for pauli in [G::I, G::X, G::Y, G::Z] {
        let p = pauli.matrix();
        for k in 0u32..4 {
            let phase = match k {
                0 => Complex::ONE,
                1 => Complex::I,
                2 => -Complex::ONE,
                _ => -Complex::I,
            };
            let matches = (0..2)
                .all(|r| (0..2).all(|c| (p[r][c] * phase).approx_eq(&m[r][c], DEFAULT_TOLERANCE)));
            if matches {
                return Some((k, pauli));
            }
        }
    }
    None
}

/// Applies a singly-controlled gate whose base matrix is `i^k P`.
fn apply_controlled(
    tab: &mut Tableau,
    gate: &circuit::OneQubitGate,
    control: usize,
    target: usize,
) -> Option<()> {
    use circuit::OneQubitGate as G;
    let (k, pauli) = as_phased_pauli(&gate.matrix())?;
    // The i^k phase of the base gate acts as S^k on the control.
    match k {
        0 => {}
        1 => tab.s(control),
        2 => tab.z(control),
        _ => tab.sdg(control),
    }
    match pauli {
        G::I => {}
        G::X => tab.cx(control, target),
        G::Z => tab.cz(control, target),
        G::Y => {
            // C-Y = (I (x) S) C-X (I (x) S†): conjugating the target by S
            // turns X into Y.
            tab.sdg(target);
            tab.cx(control, target);
            tab.s(target);
        }
        _ => return None,
    }
    Some(())
}

fn check_range(op: &Operation, op_index: usize, num_qubits: usize) -> Result<(), TableauError> {
    for q in op.support() {
        if q.index() >= num_qubits {
            return Err(TableauError::QubitOutOfRange {
                op_index,
                qubit: q.index(),
                num_qubits,
            });
        }
    }
    Ok(())
}

/// Applies one operation to the tableau, updating the classical `record`
/// for measurements and reading it for conditioned operations.  `op_index`
/// is only used in error reports.
///
/// # Errors
///
/// [`TableauError::NotClifford`] if the operation is outside the stabilizer
/// alphabet, [`TableauError::QubitOutOfRange`] if it addresses a qubit the
/// tableau does not have.
pub fn apply_operation<R: RngCore + ?Sized>(
    tab: &mut Tableau,
    op: &Operation,
    op_index: usize,
    record: &mut u64,
    rng: &mut R,
) -> Result<(), TableauError> {
    check_range(op, op_index, tab.num_qubits())?;
    let not_clifford = || TableauError::NotClifford {
        op_index,
        op: op.to_string(),
    };
    match op {
        Operation::Unitary {
            gate,
            target,
            controls,
        } => match controls.as_slice() {
            [] => apply_one_qubit(tab, gate, target.index()).ok_or_else(not_clifford),
            [control] => apply_controlled(tab, gate, control.index(), target.index())
                .ok_or_else(not_clifford),
            _ => Err(not_clifford()),
        },
        Operation::Swap { a, b, controls } => {
            if controls.is_empty() {
                tab.swap(a.index(), b.index());
                Ok(())
            } else {
                Err(not_clifford())
            }
        }
        Operation::Permute { .. } => Err(not_clifford()),
        Operation::Measure { qubit, cbit } => {
            let outcome = tab.measure(qubit.index(), rng);
            *record = (*record & !(1u64 << cbit)) | (u64::from(outcome) << cbit);
            Ok(())
        }
        Operation::Reset { qubit } => {
            tab.reset(qubit.index(), rng);
            Ok(())
        }
        Operation::Conditioned { condition, op } => {
            if condition.is_satisfied_by(*record) {
                apply_operation(tab, op, op_index, record, rng)
            } else {
                // Still classify: a skipped non-Clifford operation must fail
                // identically on every shot, not depend on the record.
                if op.is_clifford() {
                    Ok(())
                } else {
                    Err(not_clifford())
                }
            }
        }
    }
}

/// Applies every operation of `circuit` to `tab` in order, starting from
/// classical record `0`, and returns the final record.
///
/// # Errors
///
/// The first [`TableauError`] encountered; the tableau is left in the state
/// reached so far.
pub fn apply_circuit<R: RngCore + ?Sized>(
    tab: &mut Tableau,
    circuit: &Circuit,
    rng: &mut R,
) -> Result<u64, TableauError> {
    let mut record = 0u64;
    for (op_index, op) in circuit.iter().enumerate() {
        apply_operation(tab, op, op_index, &mut record, rng)?;
    }
    Ok(record)
}

/// Runs `circuit` from the all-zeros state and returns the final tableau
/// and classical record.
///
/// # Errors
///
/// See [`apply_circuit`].
pub fn simulate<R: RngCore + ?Sized>(
    circuit: &Circuit,
    rng: &mut R,
) -> Result<(Tableau, u64), TableauError> {
    let mut tab = Tableau::zero_state(usize::from(circuit.num_qubits()).max(1));
    let record = apply_circuit(&mut tab, circuit, rng)?;
    Ok((tab, record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::{Circuit, OneQubitGate, Qubit};
    use mathkit::Angle;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn clifford_table_has_24_classes() {
        assert_eq!(clifford_table().len(), 24);
        // Longest {H, S} word needed is small (the Cayley graph of the
        // 1-qubit Clifford group over {H, S} has diameter <= 7).
        assert!(clifford_table().values().all(|w| w.len() <= 7));
    }

    /// Applies `ops` to dense 2x2 matrices and compares (up to global
    /// phase) against the tableau lowering, by checking measurement
    /// statistics in the Z and X bases match on a 1-qubit register.
    fn dense_column(gate: OneQubitGate, basis: OneQubitGate) -> (f64, f64) {
        // Probability of outcome 0 after `basis`-change . gate |0>.
        let g = gate.matrix();
        let b = basis.matrix();
        let m = mat_mul(&b, &g);
        (m[0][0].norm_sqr(), m[1][0].norm_sqr())
    }

    fn tableau_outcome_probability(gate: OneQubitGate, basis: OneQubitGate) -> f64 {
        let mut zeros = 0u32;
        let shots = 2000;
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..shots {
            let mut tab = Tableau::zero_state(1);
            apply_one_qubit(&mut tab, &gate, 0).expect("gate must be Clifford");
            apply_one_qubit(&mut tab, &basis, 0).expect("basis change must be Clifford");
            if !tab.measure(0, &mut rng) {
                zeros += 1;
            }
        }
        f64::from(zeros) / f64::from(shots)
    }

    #[test]
    fn matrix_matched_gates_agree_with_dense_statistics() {
        let gates = [
            OneQubitGate::SqrtX,
            OneQubitGate::SqrtXdg,
            OneQubitGate::SqrtY,
            OneQubitGate::SqrtYdg,
            OneQubitGate::Rx(Angle::pi_over(2)),
            OneQubitGate::Ry(Angle::pi_over(2)),
            OneQubitGate::Rz(Angle::pi_over(2)),
            OneQubitGate::Phase(Angle::pi_over(2)),
            OneQubitGate::Rz(Angle::radians_value(-std::f64::consts::FRAC_PI_2)),
            OneQubitGate::U {
                theta: Angle::pi_over(2),
                phi: Angle::pi_over(1),
                lambda: Angle::pi_over(2),
            },
        ];
        for gate in gates {
            for basis in [OneQubitGate::I, OneQubitGate::H] {
                let (p0, _) = dense_column(gate, basis);
                let observed = tableau_outcome_probability(gate, basis);
                assert!(
                    (observed - p0).abs() < 0.05,
                    "{gate:?} in basis {basis:?}: dense {p0}, tableau {observed}"
                );
            }
        }
    }

    #[test]
    fn non_clifford_gates_are_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for gate in [
            OneQubitGate::T,
            OneQubitGate::Tdg,
            OneQubitGate::Rz(Angle::pi_over(4)),
            OneQubitGate::Rx(Angle::radians_value(0.3)),
        ] {
            let mut circ = Circuit::new(1);
            circ.gate(gate, Qubit(0));
            let err = simulate(&circ, &mut rng).unwrap_err();
            assert!(
                matches!(err, TableauError::NotClifford { op_index: 0, .. }),
                "{gate:?}: {err}"
            );
        }
    }

    #[test]
    fn controlled_paulis_and_phase_equivalents() {
        let mut rng = SmallRng::seed_from_u64(2);
        // CX via the generic controlled path on |1, 0>: flips the target.
        let mut circ = Circuit::new(2);
        circ.x(Qubit(0));
        circ.cx(Qubit(0), Qubit(1));
        let (mut tab, _) = simulate(&circ, &mut rng).expect("clifford");
        assert_eq!(tab.as_basis_state(), Some(vec![0b11]));

        // Controlled-Rz(pi) = C-(-iZ) = S†(control) . CZ: diagonal, so
        // check it in the Hadamard frame where CZ acts as CX.
        let mut a = Circuit::new(2);
        a.x(Qubit(0));
        a.h(Qubit(1));
        a.push(Operation::Unitary {
            gate: OneQubitGate::Rz(Angle::pi_over(1)),
            target: Qubit(1),
            controls: vec![Qubit(0)],
        });
        a.h(Qubit(1));
        let (mut tab_a, _) = simulate(&a, &mut rng).expect("clifford");
        // Rz(pi) = -iZ on the target: H Z H = X flips qubit 1.
        assert_eq!(tab_a.as_basis_state(), Some(vec![0b11]));

        // CY on |1, 0>: target flips (phase is unobservable in Z basis).
        let mut c = Circuit::new(2);
        c.x(Qubit(0));
        c.push(Operation::Unitary {
            gate: OneQubitGate::Y,
            target: Qubit(1),
            controls: vec![Qubit(0)],
        });
        let (mut tab_c, _) = simulate(&c, &mut rng).expect("clifford");
        assert_eq!(tab_c.as_basis_state(), Some(vec![0b11]));

        // CS is not Clifford.
        let mut bad = Circuit::new(2);
        bad.push(Operation::Unitary {
            gate: OneQubitGate::S,
            target: Qubit(1),
            controls: vec![Qubit(0)],
        });
        assert!(matches!(
            simulate(&bad, &mut rng),
            Err(TableauError::NotClifford { .. })
        ));
    }

    #[test]
    fn cy_phase_is_observable_in_bell_interference() {
        // Verify the S^k-on-control bookkeeping: (H on control) CY
        // (H on control) distinguishes CY from S(control).CX only through
        // the relative phase; compare against dense statevector.
        use statevector::StateVector;
        let mut circ = Circuit::new(2);
        circ.h(Qubit(0));
        circ.push(Operation::Unitary {
            gate: OneQubitGate::Y,
            target: Qubit(1),
            controls: vec![Qubit(0)],
        });
        circ.h(Qubit(0));
        let mut sv = StateVector::zero_state(2);
        for op in circ.iter() {
            statevector::apply_operation(&mut sv, op);
        }
        let dense: Vec<f64> = (0..4).map(|i| sv.probability(i)).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        let shots = 4000;
        for _ in 0..shots {
            let (tab, _) = simulate(&circ, &mut rng).expect("clifford");
            counts[usize::try_from(tab.measurement_sampler().sample_u64(&mut rng))
                .expect("2-qubit outcome")] += 1;
        }
        for i in 0..4 {
            let f = f64::from(counts[i]) / f64::from(shots);
            assert!(
                (f - dense[i]).abs() < 0.04,
                "outcome {i}: dense {} tableau {f}",
                dense[i]
            );
        }
    }

    #[test]
    fn measurement_record_and_conditioning() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Measure |1> into c0; conditioned X on c==1 flips qubit 1.
        let mut circ = Circuit::new(2);
        circ.x(Qubit(0));
        circ.measure(Qubit(0), 0);
        circ.push(Operation::Conditioned {
            condition: circuit::Condition::equals(1),
            op: Box::new(Operation::Unitary {
                gate: OneQubitGate::X,
                target: Qubit(1),
                controls: vec![],
            }),
        });
        circ.measure(Qubit(1), 1);
        let (_, record) = simulate(&circ, &mut rng).expect("clifford");
        assert_eq!(record, 0b11);

        // An unsatisfied condition skips the gate.
        let mut skip = Circuit::new(2);
        skip.measure(Qubit(0), 0);
        skip.push(Operation::Conditioned {
            condition: circuit::Condition::equals(1),
            op: Box::new(Operation::Unitary {
                gate: OneQubitGate::X,
                target: Qubit(1),
                controls: vec![],
            }),
        });
        skip.measure(Qubit(1), 1);
        let (_, record) = simulate(&skip, &mut rng).expect("clifford");
        assert_eq!(record, 0);

        // A skipped non-Clifford gate still fails classification.
        let mut bad = Circuit::new(1);
        bad.push(Operation::Conditioned {
            condition: circuit::Condition::equals(1),
            op: Box::new(Operation::Unitary {
                gate: OneQubitGate::T,
                target: Qubit(0),
                controls: vec![],
            }),
        });
        assert!(matches!(
            simulate(&bad, &mut rng),
            Err(TableauError::NotClifford { .. })
        ));
    }

    #[test]
    fn out_of_range_is_reported_not_panicked() {
        let mut tab = Tableau::zero_state(2);
        let op = Operation::Unitary {
            gate: OneQubitGate::H,
            target: Qubit(5),
            controls: vec![],
        };
        let mut record = 0;
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(
            apply_operation(&mut tab, &op, 3, &mut record, &mut rng),
            Err(TableauError::QubitOutOfRange {
                op_index: 3,
                qubit: 5,
                num_qubits: 2
            })
        );
    }
}

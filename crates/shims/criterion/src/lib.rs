//! Offline shim for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the benches link against
//! this small but functional harness instead: it warms up, calibrates an
//! iteration count per sample, takes `sample_size` timed samples and reports
//! the median time per iteration (plus throughput when configured).  The API
//! mirrors `criterion` 0.5 closely enough that swapping the real crate back
//! in requires no source changes in the benches.
//!
//! Environment knobs:
//!
//! * `CRITERION_QUICK=1` — smoke mode: clamps warm-up/measurement windows to
//!   a few milliseconds and the sample count to 3 so a full bench suite runs
//!   in seconds (used by CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement window per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let (warm_up, measurement, samples) = if quick_mode() {
            (Duration::from_millis(5), Duration::from_millis(30), 3)
        } else {
            (self.warm_up_time, self.measurement_time, self.sample_size)
        };
        let mut bencher = Bencher {
            warm_up,
            measurement,
            samples,
            per_iter: None,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.id);
        match bencher.per_iter {
            Some(per_iter) => {
                let thrpt = match self.throughput {
                    Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                        format!("  thrpt: {:.3e} elem/s", n as f64 / (per_iter * 1e-9))
                    }
                    Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                        format!("  thrpt: {:.3e} B/s", n as f64 / (per_iter * 1e-9))
                    }
                    _ => String::new(),
                };
                eprintln!("  {label:<60} time: {}{thrpt}", format_ns(per_iter));
            }
            None => eprintln!("  {label:<60} (no measurement taken)"),
        }
    }

    /// Ends the group (printing happens eagerly; this exists for API parity).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us/iter", ns / 1e3)
    } else {
        format!("{ns:.2} ns/iter")
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    per_iter: Option<f64>,
}

impl Bencher {
    /// Runs `f` in a timed loop and records the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: count how many iterations fit in the
        // warm-up window to size each measured sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let warm_elapsed = warm_start.elapsed().as_secs_f64().max(1e-9);
        let per_iter_estimate = warm_elapsed / warm_iters as f64;
        let budget_per_sample = self.measurement.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((budget_per_sample / per_iter_estimate).round() as u64).max(1);

        let mut sample_times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_times.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        sample_times.sort_by(f64::total_cmp);
        let median = sample_times[sample_times.len() / 2];
        self.per_iter = Some(median * 1e9);
    }

    /// `iter` variant that gives the closure a fresh input per batch
    /// (provided for API parity; runs setup outside the timed region).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Time one call per sample with setup excluded.
        let mut sample_times: Vec<f64> = Vec::with_capacity(self.samples);
        // Warm-up once.
        black_box(f(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            sample_times.push(start.elapsed().as_secs_f64());
        }
        sample_times.sort_by(f64::total_cmp);
        self.per_iter = Some(sample_times[sample_times.len() / 2] * 1e9);
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API parity).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_a_time() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}

//! Offline drop-in replacement for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! its own small RNG crate under the same name and API shape: [`Rng`],
//! [`RngCore`], [`SeedableRng`] and the [`rngs::StdRng`]/[`rngs::SmallRng`]
//! generators.  The generators are real, well-studied PRNGs (xoshiro256**
//! and xoshiro256++, seeded through SplitMix64 exactly as recommended by
//! their authors), not stubs — every statistical test in the workspace runs
//! against them.  Swapping back to the real `rand`/`rand_xoshiro` crates
//! means changing the workspace-manifest entry plus two small source
//! adjustments: upstream gates `rngs::SmallRng` behind the `small_rng`
//! feature, and [`splitmix64`] is shim-only (upstream has no equivalent;
//! `crates/dd/src/compiled.rs` uses it for chunk-seed derivation and would
//! need to inline it).
//!
//! Stream values are *not* bit-compatible with the upstream `rand` crate
//! (upstream `StdRng` is ChaCha12); all workspace tests are either
//! statistical or compare runs against each other, so only determinism for a
//! fixed seed matters, which this crate guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (the high half of
    /// [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` by widening multiply with rejection
/// (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Zone rejection keeps the draw exactly uniform for every span.
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let wide = u128::from(x) * u128::from(span);
        let low = wide as u64;
        if low >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (for `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Creates the generator from a `u64`, expanded through SplitMix64 (the
    /// seeding procedure recommended by the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 generator; used for seed expansion and for
/// deriving independent per-chunk streams in the parallel sampler.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The bundled generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    fn state_from_seed(seed: [u8; 32]) -> [u64; 4] {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; perturb it.
        if s == [0; 4] {
            let mut sm = 0x9E37_79B9_7F4A_7C15;
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
        }
        s
    }

    /// The workspace's default deterministic generator: xoshiro256**.
    ///
    /// (Upstream `rand` uses ChaCha12 here; the workspace only relies on
    /// per-seed determinism and statistical quality, which xoshiro256**
    /// provides at a fraction of the cost.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            Self {
                s: state_from_seed(seed),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small, fast generator for throughput-critical sampling loops:
    /// xoshiro256++ (what `rand`'s 64-bit `SmallRng` is as well).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            Self {
                s: state_from_seed(seed),
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0..8);
            assert!((0..8).contains(&v));
            seen[v as usize] = true;
            let u: u64 = rng.gen_range(5..6);
            assert_eq!(u, 5);
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "every value of 0..8 appears");
    }

    #[test]
    fn gen_range_is_unbiased_across_a_non_power_of_two_span() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            let freq = f64::from(c) / f64::from(n);
            assert!((freq - 1.0 / 3.0).abs() < 0.01, "freq {freq}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn trait_objects_and_unsized_receivers_work() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(0);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}

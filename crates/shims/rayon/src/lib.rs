//! Offline shim for the small `rayon` API subset this workspace uses.
//!
//! The build environment cannot reach crates.io, so parallel shot batching is
//! built on [`std::thread::scope`] behind a `rayon`-shaped facade:
//!
//! * [`current_num_threads`] — worker count, honouring `RAYON_NUM_THREADS`;
//! * [`scope`] — structured fork/join spawning with borrowed captures;
//! * [`join`] — two-way fork/join.
//!
//! Differences from the real crate: there is no persistent work-stealing
//! pool (threads are spawned per [`scope`] call and joined at its end), and
//! [`Scope::spawn`] takes a plain `FnOnce()` instead of `FnOnce(&Scope)`.
//! The callers in this workspace amortize the spawn cost over thousands of
//! samples per task, where the difference is noise.
//!
//! # The scoped-pool pattern
//!
//! Both heavy users — `CompiledSampler::sample_many_parallel` (shot
//! batching) and `dd::parallel` (parallel DD construction) — follow the
//! same shape on top of [`scope`]:
//!
//! 1. decompose the work into a deterministic, scheduler-independent task
//!    list *before* spawning anything;
//! 2. statically partition the tasks into `min(workers, tasks)` contiguous
//!    chunks (`chunks`/`chunks_mut`, one spawn per chunk) so each output
//!    slot is written by exactly one worker through a disjoint `&mut` slice
//!    — no locks, no channels;
//! 3. merge the slots *after* the scope joins, in task order, so the result
//!    is a pure function of the task list and never of thread timing.
//!
//! Because [`scope`] joins every task before returning and panics
//! propagate at the join, a worker failure can never be silently lost;
//! workers that must fail softly return `Result` through their slot
//! instead (the DD construction workers do — the lowest-indexed error
//! wins deterministically).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The number of worker threads [`scope`] will use: the `RAYON_NUM_THREADS`
/// environment variable if set to a positive integer, otherwise the number
/// of available CPUs.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scope in which borrowed-data tasks can be spawned; all tasks are joined
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; it finishes
    /// before the enclosing [`scope`] call returns.
    ///
    /// A panic inside a task propagates out of the enclosing [`scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Runs `f` with a [`Scope`] handle and joins every spawned task before
/// returning `f`'s result.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs the two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut right = None;
    let left = scope(|s| {
        s.spawn(|| right = Some(b()));
        a()
    });
    (left, right.expect("spawned task ran to completion"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks_and_allows_borrows() {
        let counter = AtomicUsize::new(0);
        let mut parts = [0u64; 8];
        scope(|s| {
            for (i, slot) in parts.iter_mut().enumerate() {
                let counter = &counter;
                s.spawn(move || {
                    *slot = i as u64 + 1;
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(parts.iter().sum::<u64>(), 36);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}

//! Distribution-equivalence tests for the retired interpreted samplers.
//!
//! `DdSampler` and `NormalizedSampler` are kept only for benchmarking
//! comparisons (behind the `comparison-samplers` feature the bench crate
//! enables), so this is where their statistical equivalence to the
//! production `CompiledSampler` is asserted: all three must be
//! chi-square-consistent with the exact state probabilities and pairwise
//! agree within statistical noise.

use dd::{CompiledSampler, DdPackage, DdSampler, NormalizedSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use weaksim::stats::chi_square_test;
use weaksim::ShotHistogram;

const SHOTS: u64 = 100_000;
const SIGNIFICANCE: f64 = 1e-4;

#[test]
fn all_three_dd_samplers_draw_the_same_distribution() {
    let circuits = [
        algorithms::ghz(8),
        algorithms::qft(6, true),
        algorithms::supremacy(3, 3, 6, 7).0,
    ];
    for circuit in &circuits {
        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, circuit).expect("valid circuit");
        let n = circuit.num_qubits();

        let general = DdSampler::new(&package, &state);
        let local = NormalizedSampler::new(&package, &state);
        let compiled = CompiledSampler::new(&package, &state).expect("compiles");

        let mut rng = StdRng::seed_from_u64(40);
        let general_hist = ShotHistogram::from_samples(
            n,
            general
                .sample_many(&package, &mut rng, SHOTS as usize)
                .into_iter(),
        );
        let mut rng = StdRng::seed_from_u64(41);
        let local_hist = ShotHistogram::from_samples(
            n,
            local
                .sample_many(&package, &mut rng, SHOTS as usize)
                .into_iter(),
        );
        let compiled_hist = ShotHistogram::from_samples(
            n,
            compiled
                .sample_many_parallel(42, SHOTS as usize)
                .into_iter(),
        );

        for (name, hist) in [
            ("DdSampler", &general_hist),
            ("NormalizedSampler", &local_hist),
            ("CompiledSampler", &compiled_hist),
        ] {
            let chi = chi_square_test(hist, |i| state.probability(&package, i));
            assert!(
                chi.is_consistent(SIGNIFICANCE),
                "{name} on {} rejected: chi2 = {:.2}, dof = {}, p = {:.6}",
                circuit.name(),
                chi.statistic,
                chi.degrees_of_freedom,
                chi.p_value
            );
        }

        // Pairwise the empirical frequencies agree within statistical noise.
        for index in general_hist
            .counts()
            .keys()
            .chain(compiled_hist.counts().keys())
        {
            let fg = general_hist.frequency(*index);
            let fl = local_hist.frequency(*index);
            let fc = compiled_hist.frequency(*index);
            assert!((fg - fc).abs() < 0.02, "index {index}: {fg} vs {fc}");
            assert!((fl - fc).abs() < 0.02, "index {index}: {fl} vs {fc}");
        }
    }
}

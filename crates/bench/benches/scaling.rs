//! Complexity-claim benches (experiment E6 of `DESIGN.md`): both samplers
//! draw an `n`-qubit sample in `O(n)` time after their respective
//! precomputations, and the precomputations are linear in the size of the
//! sampled representation.

use bench::{prepare_state, sample_prepared, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd::{DdPackage, DdSampler};
use weaksim::experiment::BenchmarkInstance;
use weaksim::Backend;

const SHOTS: u64 = 10_000;

/// Per-sample cost as a function of the qubit count, on product states where
/// the DD has exactly `n` nodes (so the traversal length is the only thing
/// that grows).
fn bench_sample_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_sample_vs_qubits");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for n in [8u16, 16, 24, 32, 40, 48] {
        let instance = BenchmarkInstance {
            name: format!("qft_{n}"),
            circuit: algorithms::qft(n, true),
        };
        let dd_state = prepare_state(&instance, Backend::DecisionDiagram);
        group.bench_with_input(BenchmarkId::new("dd", n), &dd_state, |b, state| {
            b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED));
        });
        if n <= 20 {
            let sv_state = prepare_state(&instance, Backend::StateVector);
            group.bench_with_input(BenchmarkId::new("vector", n), &sv_state, |b, state| {
                b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED));
            });
        }
    }
    group.finish();
}

/// Precomputation cost (downstream probabilities) as a function of the
/// decision-diagram size, using GHZ-like states whose DD grows linearly.
fn bench_precompute_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_precompute_vs_dd_size");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for n in [8u16, 16, 32, 48] {
        let circuit = algorithms::ghz(n);
        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
        group.bench_with_input(
            BenchmarkId::new("downstream_annotation", state.node_count(&package)),
            &(&package, &state),
            |b, (package, state)| b.iter(|| DdSampler::new(package, state)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sample_scaling, bench_precompute_scaling);
criterion_main!(benches);

//! Table I, supremacy rows: sampling time for random grid circuits
//! (`supremacy_4x4_10` with both samplers; the larger grids are run by the
//! `table1` binary, where a single measurement suffices).

use bench::{prepare_state, sample_prepared, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaksim::experiment::BenchmarkInstance;
use weaksim::Backend;

const SHOTS: u64 = 10_000;

fn instances() -> Vec<BenchmarkInstance> {
    [(3u16, 3u16, 8u16), (4, 4, 10)]
        .into_iter()
        .map(|(rows, cols, depth)| {
            let (circuit, _) = algorithms::supremacy(rows, cols, depth, BENCH_SEED);
            BenchmarkInstance {
                name: circuit.name().to_string(),
                circuit,
            }
        })
        .collect()
}

fn bench_supremacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_supremacy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for instance in instances() {
        let dd_state = prepare_state(&instance, Backend::DecisionDiagram);
        group.bench_with_input(
            BenchmarkId::new("dd_sample_10k", &instance.name),
            &dd_state,
            |b, state| b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED)),
        );
        let sv_state = prepare_state(&instance, Backend::StateVector);
        group.bench_with_input(
            BenchmarkId::new("vector_sample_10k", &instance.name),
            &sv_state,
            |b, state| b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_supremacy);
criterion_main!(benches);

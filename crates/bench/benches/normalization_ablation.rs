//! Ablation of the paper's proposed normalization scheme (Section IV-C,
//! experiment E7 of `DESIGN.md`): sampling with
//!
//! * the general downstream-probability sampler on a left-most-normalized
//!   DD (the pre-existing scheme),
//! * the general sampler on a 2-norm-normalized DD, and
//! * the specialised [`NormalizedSampler`] that exploits the 2-norm
//!   invariant and reads branch probabilities straight off the edge weights.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd::{DdPackage, DdSampler, Normalization, NormalizedSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHOTS: u64 = 10_000;

fn workloads() -> Vec<circuit::Circuit> {
    vec![
        algorithms::qft(24, true),
        algorithms::grover(12, BENCH_SEED),
        algorithms::shor(33, 2).0,
        algorithms::supremacy(3, 3, 8, BENCH_SEED).0,
    ]
}

fn bench_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalization_ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for circuit in workloads() {
        // Left-most normalization + general sampler.
        let mut leftmost = DdPackage::with_normalization(Normalization::LeftMost);
        let left_state = dd::simulate(&mut leftmost, &circuit).expect("valid circuit");
        group.bench_with_input(
            BenchmarkId::new("leftmost_downstream_sampler", circuit.name()),
            &(&leftmost, &left_state),
            |b, (package, state)| {
                let sampler = DdSampler::new(package, state);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS)
                        .map(|_| sampler.sample(package, &mut rng))
                        .sum::<u64>()
                });
            },
        );

        // 2-norm normalization + general sampler.
        let mut two_norm = DdPackage::with_normalization(Normalization::TwoNorm);
        let norm_state = dd::simulate(&mut two_norm, &circuit).expect("valid circuit");
        group.bench_with_input(
            BenchmarkId::new("two_norm_downstream_sampler", circuit.name()),
            &(&two_norm, &norm_state),
            |b, (package, state)| {
                let sampler = DdSampler::new(package, state);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS)
                        .map(|_| sampler.sample(package, &mut rng))
                        .sum::<u64>()
                });
            },
        );

        // 2-norm normalization + local-weight sampler (the paper's proposal).
        group.bench_with_input(
            BenchmarkId::new("two_norm_local_sampler", circuit.name()),
            &(&two_norm, &norm_state),
            |b, (package, state)| {
                let sampler = NormalizedSampler::new(package, state);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS)
                        .map(|_| sampler.sample(package, &mut rng))
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_normalization);
criterion_main!(benches);

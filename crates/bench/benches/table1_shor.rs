//! Table I, Shor rows: sampling time for order-finding circuits with both
//! samplers (`shor_15_2`, `shor_21_2`, `shor_33_2`; the larger moduli of the
//! paper are exercised by the `table1` binary at `--scale full`).

use bench::{prepare_state, sample_prepared, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaksim::experiment::BenchmarkInstance;
use weaksim::Backend;

const SHOTS: u64 = 10_000;

fn instances() -> Vec<BenchmarkInstance> {
    [(15u64, 2u64), (21, 2), (33, 2)]
        .into_iter()
        .map(|(modulus, base)| {
            let (circuit, _) = algorithms::shor(modulus, base);
            BenchmarkInstance {
                name: circuit.name().to_string(),
                circuit,
            }
        })
        .collect()
}

fn bench_shor(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_shor");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for instance in instances() {
        let dd_state = prepare_state(&instance, Backend::DecisionDiagram);
        group.bench_with_input(
            BenchmarkId::new("dd_sample_10k", &instance.name),
            &dd_state,
            |b, state| b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED)),
        );
        let sv_state = prepare_state(&instance, Backend::StateVector);
        group.bench_with_input(
            BenchmarkId::new("vector_sample_10k", &instance.name),
            &sv_state,
            |b, state| b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shor);
criterion_main!(benches);

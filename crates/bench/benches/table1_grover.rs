//! Table I, Grover rows: sampling time for Grover circuits of increasing
//! size with both samplers (scaled-down search registers so the bench stays
//! affordable; the shape — DD size ~ 2 nodes per qubit, vector size 2^n —
//! matches the paper's grover_20..grover_35 rows).

use bench::{prepare_state, sample_prepared, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaksim::experiment::BenchmarkInstance;
use weaksim::Backend;

const SHOTS: u64 = 10_000;

fn instances() -> Vec<BenchmarkInstance> {
    [10u16, 13, 16]
        .into_iter()
        .map(|n| BenchmarkInstance {
            name: format!("grover_{n}"),
            circuit: algorithms::grover(n, BENCH_SEED),
        })
        .collect()
}

fn bench_grover(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_grover");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for instance in instances() {
        let dd_state = prepare_state(&instance, Backend::DecisionDiagram);
        group.bench_with_input(
            BenchmarkId::new("dd_sample_10k", &instance.name),
            &dd_state,
            |b, state| b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED)),
        );
        let sv_state = prepare_state(&instance, Backend::StateVector);
        group.bench_with_input(
            BenchmarkId::new("vector_sample_10k", &instance.name),
            &sv_state,
            |b, state| b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grover);
criterion_main!(benches);

//! Raw sampler throughput: precomputation cost and per-sample cost of both
//! methods, measured separately (the two phases that add up to the `t [s]`
//! columns of Table I).

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd::{DdPackage, DdSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use statevector::PrefixSampler;

const SHOTS: u64 = 10_000;

fn workloads() -> Vec<circuit::Circuit> {
    vec![
        algorithms::qft(20, true),
        algorithms::supremacy(4, 4, 10, BENCH_SEED).0,
        algorithms::w_state(20),
    ]
}

fn bench_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("precompute");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for circuit in workloads() {
        let dense = statevector::simulate(&circuit).expect("dense simulation fits");
        group.bench_with_input(
            BenchmarkId::new("prefix_sum_construction", circuit.name()),
            &dense,
            |b, state| b.iter(|| PrefixSampler::new(state)),
        );

        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
        group.bench_with_input(
            BenchmarkId::new("downstream_annotation", circuit.name()),
            &(&package, &state),
            |b, (package, state)| b.iter(|| DdSampler::new(package, state)),
        );
    }
    group.finish();
}

fn bench_per_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_sample");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(SHOTS));

    for circuit in workloads() {
        let dense = statevector::simulate(&circuit).expect("dense simulation fits");
        let prefix = PrefixSampler::new(&dense);
        group.bench_with_input(
            BenchmarkId::new("binary_search", circuit.name()),
            &prefix,
            |b, sampler| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS).map(|_| sampler.sample(&mut rng)).sum::<u64>()
                });
            },
        );

        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
        let sampler = DdSampler::new(&package, &state);
        group.bench_with_input(
            BenchmarkId::new("dd_path_traversal", circuit.name()),
            &(&package, &sampler),
            |b, (package, sampler)| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS).map(|_| sampler.sample(package, &mut rng)).sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_precompute, bench_per_sample);
criterion_main!(benches);

//! Raw sampler throughput: precomputation cost and per-sample cost of every
//! sampling method, measured separately (the two phases that add up to the
//! `t [s]` columns of Table I).
//!
//! Besides the Criterion groups, this bench records the headline baseline —
//! `CompiledSampler` vs `DdSampler` on the 20-qubit supremacy state — into
//! `BENCH_sampler_throughput.json` at the workspace root.  Regenerate with:
//!
//! ```text
//! cargo bench -p bench --bench sampler_throughput
//! ```
//!
//! (`CRITERION_QUICK=1` shrinks the Criterion windows for CI smoke runs; the
//! JSON baseline always uses fixed shot counts and wall-clock timing.)

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd::{CompiledSampler, DdPackage, DdSampler, NormalizedSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use statevector::PrefixSampler;
use std::time::Instant;
use weaksim::{
    simulate_noisy_trajectories_with_threads, simulate_trajectories_with_threads, Backend,
};

const SHOTS: u64 = 10_000;

/// Teleportation with mid-circuit measurement: the reference dynamic-circuit
/// workload for the trajectory engine (three events, non-trivial suffix).
fn trajectory_workload() -> circuit::Circuit {
    algorithms::teleportation(1.2)
}

/// Iterative phase estimation: the classically-controlled (`if (c==k)`)
/// reference workload — measure/reset qubit reuse plus feed-forward phase
/// corrections resolved against the per-shot classical record.
fn ipe_workload() -> circuit::Circuit {
    algorithms::ipe(3, 1.0)
}

/// The noisy reference workload: teleportation under the uniform hardware
/// model at a realistic 1% error rate (depolarizing gate noise + bit-flip
/// read-out error), realized per shot by stochastic Kraus insertion.
fn noisy_workload() -> (circuit::Circuit, circuit::NoiseModel) {
    (
        algorithms::teleportation(1.2),
        algorithms::hardware_noise(0.01),
    )
}

fn workloads() -> Vec<circuit::Circuit> {
    vec![
        algorithms::qft(20, true),
        algorithms::supremacy(4, 4, 10, BENCH_SEED).0,
        algorithms::w_state(20),
    ]
}

fn bench_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("precompute");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for circuit in workloads() {
        let dense = statevector::simulate(&circuit).expect("dense simulation fits");
        group.bench_with_input(
            BenchmarkId::new("prefix_sum_construction", circuit.name()),
            &dense,
            |b, state| b.iter(|| PrefixSampler::new(state)),
        );

        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
        group.bench_with_input(
            BenchmarkId::new("downstream_annotation", circuit.name()),
            &(&package, &state),
            |b, (package, state)| b.iter(|| DdSampler::new(package, state)),
        );
        group.bench_with_input(
            BenchmarkId::new("arena_compilation", circuit.name()),
            &(&package, &state),
            |b, (package, state)| b.iter(|| CompiledSampler::new(package, state)),
        );
    }
    group.finish();
}

fn bench_per_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_sample");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(SHOTS));

    for circuit in workloads() {
        let dense = statevector::simulate(&circuit).expect("dense simulation fits");
        let prefix = PrefixSampler::new(&dense);
        group.bench_with_input(
            BenchmarkId::new("binary_search", circuit.name()),
            &prefix,
            |b, sampler| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS).map(|_| sampler.sample(&mut rng)).sum::<u64>()
                });
            },
        );

        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
        let sampler = DdSampler::new(&package, &state);
        group.bench_with_input(
            BenchmarkId::new("dd_path_traversal", circuit.name()),
            &(&package, &sampler),
            |b, (package, sampler)| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS)
                        .map(|_| sampler.sample(package, &mut rng))
                        .sum::<u64>()
                });
            },
        );

        let compiled = CompiledSampler::new(&package, &state);
        group.bench_with_input(
            BenchmarkId::new("compiled_arena_walk", circuit.name()),
            &compiled,
            |b, sampler| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS).map(|_| sampler.sample(&mut rng)).sum::<u64>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_parallel_batch", circuit.name()),
            &compiled,
            |b, sampler| {
                b.iter(|| {
                    sampler
                        .sample_many_parallel(BENCH_SEED, SHOTS as usize)
                        .iter()
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

/// Per-trajectory throughput of the dynamic-circuit engine on the
/// teleportation workload, so regressions in the new path show up next to
/// the static sampler numbers.
fn bench_trajectories(c: &mut Criterion) {
    let mut group = c.benchmark_group("trajectory");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(SHOTS));

    for (name, circuit) in [
        ("teleportation_shots", trajectory_workload()),
        ("ipe_shots", ipe_workload()),
    ] {
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{backend}")),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        simulate_trajectories_with_threads(backend, circuit, SHOTS, BENCH_SEED, 1)
                            .expect("trajectory simulation succeeds")
                            .histogram
                            .shots()
                    });
                },
            );
        }
    }

    // The stochastic-noise path: every shot draws a Kraus branch per noise
    // site on top of the measurement draws.
    let (noisy_circuit, noise) = noisy_workload();
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        group.bench_with_input(
            BenchmarkId::new("noisy_teleportation_shots", format!("{backend}")),
            &(&noisy_circuit, &noise),
            |b, (circuit, noise)| {
                b.iter(|| {
                    simulate_noisy_trajectories_with_threads(
                        backend, circuit, noise, SHOTS, BENCH_SEED, 1,
                    )
                    .expect("noisy trajectory simulation succeeds")
                    .histogram
                    .shots()
                });
            },
        );
    }
    group.finish();
}

/// Wall-clock throughput of each sampler on the 20-qubit supremacy state,
/// recorded to `BENCH_sampler_throughput.json` (the acceptance baseline:
/// compiled single-thread >= 3x `DdSampler`).
fn record_baseline_json(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let shots: usize = if quick { 20_000 } else { 200_000 };

    let (circuit, _) = algorithms::supremacy(4, 5, 10, BENCH_SEED);
    let mut package = DdPackage::new();
    let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
    let nodes = state.node_count(&package);

    let compile_start = Instant::now();
    let compiled = CompiledSampler::new(&package, &state);
    let compile_seconds = compile_start.elapsed().as_secs_f64();

    let dd_sampler = DdSampler::new(&package, &state);
    let normalized = NormalizedSampler::new(&package, &state);
    let threads = rayon::current_num_threads();

    let time = |f: &mut dyn FnMut() -> u64| -> f64 {
        let checksum = f(); // warm caches once
        std::hint::black_box(checksum);
        let start = Instant::now();
        std::hint::black_box(f());
        start.elapsed().as_secs_f64()
    };

    let dd_seconds = time(&mut || {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        dd_sampler
            .sample_many(&package, &mut rng, shots)
            .iter()
            .sum()
    });
    let normalized_seconds = time(&mut || {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        normalized
            .sample_many(&package, &mut rng, shots)
            .iter()
            .sum()
    });
    let compiled_seconds = time(&mut || {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        compiled.sample_many(&mut rng, shots).iter().sum()
    });
    let parallel_seconds = time(&mut || {
        compiled
            .sample_many_parallel(BENCH_SEED, shots)
            .iter()
            .sum()
    });

    // The dynamic-circuit trajectory engine on the teleportation and the
    // iterative-phase-estimation (classically-controlled) workloads: one
    // single-worker run each for a machine-independent per-shot number, plus
    // a run on every available worker so multi-thread scaling is *recorded*
    // with the thread count that actually ran — not assumed from the bench
    // configuration (on a 1-CPU box the parallel entry simply repeats the
    // single-thread number with "threads": 1).
    let trajectory_shots = shots as u64;
    let trajectory_entry = |circuit: &circuit::Circuit,
                            noise: Option<&circuit::NoiseModel>,
                            workers: usize|
     -> String {
        let seconds = time(&mut || {
            match noise {
                None => simulate_trajectories_with_threads(
                    Backend::DecisionDiagram,
                    circuit,
                    trajectory_shots,
                    BENCH_SEED,
                    workers,
                ),
                Some(noise) => simulate_noisy_trajectories_with_threads(
                    Backend::DecisionDiagram,
                    circuit,
                    noise,
                    trajectory_shots,
                    BENCH_SEED,
                    workers,
                ),
            }
            .expect("trajectory simulation succeeds")
            .histogram
            .shots()
        });
        let name = match noise {
            None => circuit.name().to_string(),
            Some(_) => format!("{}_noisy", circuit.name()),
        };
        format!(
            "{{\n    \"benchmark\": \"{name}\",\n    \"backend\": \"dd\",\n    \"shots\": {trajectory_shots},\n    \"threads\": {workers},\n    \"seconds\": {seconds:.6},\n    \"shots_per_second\": {rate:.0}\n  }}",
            rate = trajectory_shots as f64 / seconds,
        )
    };
    let trajectory_circuit = trajectory_workload();
    let ipe_circuit = ipe_workload();
    let (noisy_circuit, noise_model) = noisy_workload();
    let trajectory_json = trajectory_entry(&trajectory_circuit, None, 1);
    let trajectory_parallel_json = trajectory_entry(&trajectory_circuit, None, threads);
    let ipe_json = trajectory_entry(&ipe_circuit, None, 1);
    let noisy_json = trajectory_entry(&noisy_circuit, Some(&noise_model), 1);

    let rate = |seconds: f64| shots as f64 / seconds;
    let json = format!(
        "{{\n  \"benchmark\": \"{name}\",\n  \"qubits\": {qubits},\n  \"dd_nodes\": {nodes},\n  \"shots\": {shots},\n  \"threads\": {threads},\n  \"compile_seconds\": {compile_seconds:.6},\n  \"samplers\": {{\n    \"dd_sampler\": {{ \"seconds\": {dd:.6}, \"shots_per_second\": {dd_rate:.0} }},\n    \"normalized_sampler\": {{ \"seconds\": {nm:.6}, \"shots_per_second\": {nm_rate:.0} }},\n    \"compiled_sampler\": {{ \"seconds\": {cp:.6}, \"shots_per_second\": {cp_rate:.0} }},\n    \"compiled_parallel\": {{ \"seconds\": {pl:.6}, \"shots_per_second\": {pl_rate:.0}, \"threads\": {threads} }}\n  }},\n  \"trajectory\": {trajectory_json},\n  \"trajectory_parallel\": {trajectory_parallel_json},\n  \"trajectory_ipe\": {ipe_json},\n  \"trajectory_noisy\": {noisy_json},\n  \"speedup_compiled_vs_dd_sampler\": {speedup:.2},\n  \"speedup_parallel_vs_dd_sampler\": {pspeedup:.2}\n}}\n",
        name = circuit.name(),
        qubits = circuit.num_qubits(),
        dd = dd_seconds,
        dd_rate = rate(dd_seconds),
        nm = normalized_seconds,
        nm_rate = rate(normalized_seconds),
        cp = compiled_seconds,
        cp_rate = rate(compiled_seconds),
        pl = parallel_seconds,
        pl_rate = rate(parallel_seconds),
        speedup = dd_seconds / compiled_seconds,
        pspeedup = dd_seconds / parallel_seconds,
    );

    // workspace root = crates/bench/../..
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_sampler_throughput.json");
    std::fs::write(&path, &json).expect("baseline JSON is writable");
    eprintln!("\nbaseline written to {}:\n{json}", path.display());
}

criterion_group!(
    benches,
    bench_precompute,
    bench_per_sample,
    bench_trajectories,
    record_baseline_json
);
criterion_main!(benches);

//! Raw sampler throughput: precomputation cost and per-sample cost of every
//! sampling method, measured separately (the two phases that add up to the
//! `t [s]` columns of Table I).
//!
//! Besides the Criterion groups, this bench records the headline baseline —
//! `CompiledSampler` vs `DdSampler` on the 20-qubit supremacy state — into
//! `BENCH_sampler_throughput.json` at the workspace root.  Regenerate with:
//!
//! ```text
//! cargo bench -p bench --bench sampler_throughput
//! ```
//!
//! (`CRITERION_QUICK=1` shrinks the Criterion windows for CI smoke runs; the
//! JSON baseline always uses fixed shot counts and wall-clock timing.)

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd::{CompiledSampler, DdPackage, DdSampler, NormalizedSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use statevector::PrefixSampler;
use std::time::Instant;
use weaksim::{
    simulate_noisy_trajectories_with_threads, simulate_trajectories_with_threads, Backend,
    WeakSimulator,
};

const SHOTS: u64 = 10_000;

/// Teleportation with mid-circuit measurement: the reference dynamic-circuit
/// workload for the trajectory engine (three events, non-trivial suffix).
fn trajectory_workload() -> circuit::Circuit {
    algorithms::teleportation(1.2)
}

/// Iterative phase estimation: the classically-controlled (`if (c==k)`)
/// reference workload — measure/reset qubit reuse plus feed-forward phase
/// corrections resolved against the per-shot classical record.
fn ipe_workload() -> circuit::Circuit {
    algorithms::ipe(3, 1.0)
}

/// The noisy reference workload: teleportation under the uniform hardware
/// model at a realistic 1% error rate (depolarizing gate noise + bit-flip
/// read-out error), realized per shot by stochastic Kraus insertion.
fn noisy_workload() -> (circuit::Circuit, circuit::NoiseModel) {
    (
        algorithms::teleportation(1.2),
        algorithms::hardware_noise(0.01),
    )
}

/// The deep-noisy workload: a supremacy-style circuit where *every* gate
/// site is a stochastic noise event, so most error shots overflow the
/// trajectory prefix cache and exercise the off-cache transient path — the
/// construction-machinery-bound regime the PR 4 follow-ups flagged as
/// "measure before optimizing".
fn deep_noisy_workload() -> (circuit::Circuit, circuit::NoiseModel) {
    (
        algorithms::supremacy(3, 3, 6, BENCH_SEED).0,
        algorithms::hardware_noise(0.005),
    )
}

fn workloads() -> Vec<circuit::Circuit> {
    vec![
        algorithms::qft(20, true),
        algorithms::supremacy(4, 4, 10, BENCH_SEED).0,
        algorithms::w_state(20),
    ]
}

fn bench_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("precompute");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for circuit in workloads() {
        let dense = statevector::simulate(&circuit).expect("dense simulation fits");
        group.bench_with_input(
            BenchmarkId::new("prefix_sum_construction", circuit.name()),
            &dense,
            |b, state| b.iter(|| PrefixSampler::new(state)),
        );

        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
        group.bench_with_input(
            BenchmarkId::new("downstream_annotation", circuit.name()),
            &(&package, &state),
            |b, (package, state)| b.iter(|| DdSampler::new(package, state)),
        );
        group.bench_with_input(
            BenchmarkId::new("arena_compilation", circuit.name()),
            &(&package, &state),
            |b, (package, state)| b.iter(|| CompiledSampler::new(package, state)),
        );
    }
    group.finish();
}

fn bench_per_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_sample");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(SHOTS));

    for circuit in workloads() {
        let dense = statevector::simulate(&circuit).expect("dense simulation fits");
        let prefix = PrefixSampler::new(&dense);
        group.bench_with_input(
            BenchmarkId::new("binary_search", circuit.name()),
            &prefix,
            |b, sampler| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS).map(|_| sampler.sample(&mut rng)).sum::<u64>()
                });
            },
        );

        let mut package = DdPackage::new();
        let state = dd::simulate(&mut package, &circuit).expect("valid circuit");
        let sampler = DdSampler::new(&package, &state);
        group.bench_with_input(
            BenchmarkId::new("dd_path_traversal", circuit.name()),
            &(&package, &sampler),
            |b, (package, sampler)| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS)
                        .map(|_| sampler.sample(package, &mut rng))
                        .sum::<u64>()
                });
            },
        );

        let compiled = CompiledSampler::new(&package, &state).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("compiled_arena_walk", circuit.name()),
            &compiled,
            |b, sampler| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    (0..SHOTS).map(|_| sampler.sample(&mut rng)).sum::<u64>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_parallel_batch", circuit.name()),
            &compiled,
            |b, sampler| {
                b.iter(|| {
                    sampler
                        .sample_many_parallel(BENCH_SEED, SHOTS as usize)
                        .iter()
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

/// Per-trajectory throughput of the dynamic-circuit engine on the
/// teleportation workload, so regressions in the new path show up next to
/// the static sampler numbers.
fn bench_trajectories(c: &mut Criterion) {
    let mut group = c.benchmark_group("trajectory");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(SHOTS));

    for (name, circuit) in [
        ("teleportation_shots", trajectory_workload()),
        ("ipe_shots", ipe_workload()),
    ] {
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{backend}")),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        simulate_trajectories_with_threads(backend, circuit, SHOTS, BENCH_SEED, 1)
                            .expect("trajectory simulation succeeds")
                            .histogram
                            .shots()
                    });
                },
            );
        }
    }

    // The stochastic-noise path: every shot draws a Kraus branch per noise
    // site on top of the measurement draws.
    let (noisy_circuit, noise) = noisy_workload();
    for backend in [Backend::DecisionDiagram, Backend::StateVector] {
        group.bench_with_input(
            BenchmarkId::new("noisy_teleportation_shots", format!("{backend}")),
            &(&noisy_circuit, &noise),
            |b, (circuit, noise)| {
                b.iter(|| {
                    simulate_noisy_trajectories_with_threads(
                        backend, circuit, noise, SHOTS, BENCH_SEED, 1,
                    )
                    .expect("noisy trajectory simulation succeeds")
                    .histogram
                    .shots()
                });
            },
        );
    }

    // The deep-noisy off-cache path (decision-diagram backend only: the
    // interesting cost is the DD construction machinery behind transient
    // trajectory suffixes).  Fewer shots — each one is a full supremacy
    // evolution when it falls off the prefix cache.
    let (deep_circuit, deep_noise) = deep_noisy_workload();
    group.bench_with_input(
        BenchmarkId::new("noisy_deep_supremacy_shots", "DD-based"),
        &(&deep_circuit, &deep_noise),
        |b, (circuit, noise)| {
            b.iter(|| {
                simulate_noisy_trajectories_with_threads(
                    Backend::DecisionDiagram,
                    circuit,
                    noise,
                    SHOTS / 5,
                    BENCH_SEED,
                    1,
                )
                .expect("deep noisy trajectory simulation succeeds")
                .histogram
                .shots()
            });
        },
    );
    group.finish();
}

/// Wall-clock throughput of each sampler on the 20-qubit supremacy state,
/// recorded to `BENCH_sampler_throughput.json` (the acceptance baseline:
/// compiled single-thread >= 3x `DdSampler`), together with the
/// construction phase (strong simulation into the DD package) and the
/// package's table statistics (`"construction"` / `"dd_stats"` keys — CI
/// greps for both, so construction performance cannot silently drop out of
/// the artifact), plus the Clifford-router entries (`"tableau_ghz"` /
/// `"routed_supremacy"`, also grepped by CI) and the `"artifact_cache"`
/// entry (cold-vs-warm cost of the same request through an
/// [`weaksim::ArtifactCache`], also grepped by CI).
fn record_baseline_json(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let shots: usize = if quick { 20_000 } else { 200_000 };

    let (circuit, _) = algorithms::supremacy(4, 5, 10, BENCH_SEED);
    let mut package = DdPackage::new();
    // Fan construction out over the rayon pool when one is worth having;
    // on a single-core box the plain sequential path is the fastest build.
    let construction_threads = rayon::current_num_threads().max(1);
    let construction_start = Instant::now();
    let state = if construction_threads > 1 {
        dd::simulate_with_threads(&mut package, &circuit, construction_threads)
            .expect("valid circuit")
    } else {
        dd::simulate(&mut package, &circuit).expect("valid circuit")
    };
    let construction_seconds = construction_start.elapsed().as_secs_f64();
    let construction_stats = package.stats();
    let nodes = state.node_count(&package);

    let compile_start = Instant::now();
    let compiled = CompiledSampler::new(&package, &state).expect("compiles");
    let compile_seconds = compile_start.elapsed().as_secs_f64();

    let dd_sampler = DdSampler::new(&package, &state);
    let normalized = NormalizedSampler::new(&package, &state);
    let threads = rayon::current_num_threads();

    let time = |f: &mut dyn FnMut() -> u64| -> f64 {
        let checksum = f(); // warm caches once
        std::hint::black_box(checksum);
        let start = Instant::now();
        std::hint::black_box(f());
        start.elapsed().as_secs_f64()
    };

    let dd_seconds = time(&mut || {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        dd_sampler
            .sample_many(&package, &mut rng, shots)
            .iter()
            .sum()
    });
    let normalized_seconds = time(&mut || {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        normalized
            .sample_many(&package, &mut rng, shots)
            .iter()
            .sum()
    });
    let compiled_seconds = time(&mut || {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        compiled.sample_many(&mut rng, shots).iter().sum()
    });
    let parallel_seconds = time(&mut || {
        compiled
            .sample_many_parallel(BENCH_SEED, shots)
            .iter()
            .sum()
    });

    // The dynamic-circuit trajectory engine on the teleportation and the
    // iterative-phase-estimation (classically-controlled) workloads: one
    // single-worker run each for a machine-independent per-shot number, plus
    // a run on every available worker so multi-thread scaling is *recorded*
    // with the thread count that actually ran — not assumed from the bench
    // configuration (on a 1-CPU box the parallel entry simply repeats the
    // single-thread number with "threads": 1).
    let trajectory_entry = |circuit: &circuit::Circuit,
                            noise: Option<&circuit::NoiseModel>,
                            suffix: &str,
                            trajectory_shots: u64,
                            workers: usize|
     -> String {
        let seconds = time(&mut || {
            match noise {
                None => simulate_trajectories_with_threads(
                    Backend::DecisionDiagram,
                    circuit,
                    trajectory_shots,
                    BENCH_SEED,
                    workers,
                ),
                Some(noise) => simulate_noisy_trajectories_with_threads(
                    Backend::DecisionDiagram,
                    circuit,
                    noise,
                    trajectory_shots,
                    BENCH_SEED,
                    workers,
                ),
            }
            .expect("trajectory simulation succeeds")
            .histogram
            .shots()
        });
        let name = format!("{}{suffix}", circuit.name());
        format!(
            "{{\n    \"benchmark\": \"{name}\",\n    \"backend\": \"dd\",\n    \"shots\": {trajectory_shots},\n    \"threads\": {workers},\n    \"seconds\": {seconds:.6},\n    \"shots_per_second\": {rate:.0}\n  }}",
            rate = trajectory_shots as f64 / seconds,
        )
    };
    let trajectory_shots = shots as u64;
    let trajectory_circuit = trajectory_workload();
    let ipe_circuit = ipe_workload();
    let (noisy_circuit, noise_model) = noisy_workload();
    let (deep_circuit, deep_noise) = deep_noisy_workload();
    let trajectory_json = trajectory_entry(&trajectory_circuit, None, "", trajectory_shots, 1);
    let trajectory_parallel_json =
        trajectory_entry(&trajectory_circuit, None, "", trajectory_shots, threads);
    let ipe_json = trajectory_entry(&ipe_circuit, None, "", trajectory_shots, 1);
    let noisy_json = trajectory_entry(
        &noisy_circuit,
        Some(&noise_model),
        "_noisy",
        trajectory_shots,
        1,
    );
    // Deep noisy supremacy: each off-cache shot is a full circuit evolution,
    // so the entry runs a tenth of the shots (still thousands of transient
    // trajectories).
    let deep_json = trajectory_entry(
        &deep_circuit,
        Some(&deep_noise),
        "_noisy_deep",
        trajectory_shots / 10,
        1,
    );

    // Clifford-router entries.  `tableau_ghz` runs a thousand-qubit GHZ
    // entirely on the stabilizer-tableau engine — a register no dense
    // backend can even allocate — and `routed_supremacy` runs a dense
    // workload *through* the router, so the cost of the routing decision
    // (classify, attempt to stitch, fall back) stays visible next to the
    // unrouted numbers.
    let router_entry = |circuit: &circuit::Circuit, router_shots: u64, workers: usize| -> String {
        let mut sim = WeakSimulator::new(Backend::DecisionDiagram).with_clifford_router();
        let mut route = String::new();
        let seconds = time(&mut || {
            let outcome = sim
                .run(circuit, router_shots, BENCH_SEED)
                .expect("routed run succeeds");
            route = outcome.route.to_string();
            outcome.histogram.shots()
        });
        format!(
            "{{\n    \"benchmark\": \"{name}\",\n    \"route\": \"{route}\",\n    \"shots\": {router_shots},\n    \"threads\": {workers},\n    \"seconds\": {seconds:.6},\n    \"shots_per_second\": {rate:.0}\n  }}",
            name = circuit.name(),
            rate = router_shots as f64 / seconds,
        )
    };
    let ghz_circuit = algorithms::ghz(1000);
    let tableau_json = router_entry(&ghz_circuit, trajectory_shots, 1);
    let routed_json = router_entry(&deep_circuit, trajectory_shots, threads);

    // Artifact-cache entry: the same supremacy request served through one
    // `ServiceBroker` — four concurrent cold tenants (one builds, the rest
    // coalesce single-flight onto the in-flight construction), then a warm
    // hit (sampling only), demonstrating the pay-once contract on the
    // headline workload.  All draws use the same seed, so the histograms
    // are bit-identical — asserted here, not just claimed.  The entry also
    // times the crash-safe snapshot round trip of the populated cache.
    let artifact_cache_json = {
        use weaksim::service::{load_snapshot, ServiceBroker, ServiceConfig};
        let broker = ServiceBroker::new(
            weaksim::ArtifactCache::unbounded(),
            ServiceConfig::default(),
        );
        let sim = WeakSimulator::new(Backend::DecisionDiagram);
        let request_shots = shots as u64;
        let cold_start = Instant::now();
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let broker = &broker;
                    let sim = &sim;
                    let circuit = &circuit;
                    scope.spawn(move || {
                        broker
                            .serve(sim, circuit, request_shots, BENCH_SEED)
                            .expect("cold serve succeeds")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("serve thread"))
                .collect()
        });
        let cold_seconds = cold_start.elapsed().as_secs_f64();
        let misses = outcomes
            .iter()
            .filter(|o| o.cache == Some(weaksim::CacheOutcome::Miss))
            .count();
        assert_eq!(misses, 1, "single-flight admits exactly one construction");
        for outcome in &outcomes[1..] {
            assert_eq!(
                outcome.histogram, outcomes[0].histogram,
                "coalesced requests must be bit-identical to the builder's"
            );
        }
        let warm_start = Instant::now();
        let warm = broker
            .serve(&sim, &circuit, request_shots, BENCH_SEED)
            .expect("warm serve succeeds");
        let warm_seconds = warm_start.elapsed().as_secs_f64();
        assert_eq!(warm.cache, Some(weaksim::CacheOutcome::Hit));
        assert_eq!(
            warm.histogram, outcomes[0].histogram,
            "warm request must be bit-identical to the cold one"
        );

        let snap = std::env::temp_dir().join(format!("weaksim-bench-{}.snap", std::process::id()));
        let write_start = Instant::now();
        broker
            .write_snapshot(&snap)
            .expect("snapshot write succeeds");
        let snapshot_write_seconds = write_start.elapsed().as_secs_f64();
        let restored = weaksim::ArtifactCache::unbounded();
        let load_start = Instant::now();
        let report = load_snapshot(&restored, &snap).expect("snapshot load succeeds");
        let snapshot_load_seconds = load_start.elapsed().as_secs_f64();
        assert_eq!(report.loaded, 1, "the snapshot round-trips the artifact");
        std::fs::remove_file(&snap).ok();

        let stats = broker.cache().stats();
        format!(
            "{{\n    \"benchmark\": \"{name}\",\n    \"shots\": {request_shots},\n    \"cold_seconds\": {cold_seconds:.6},\n    \"warm_seconds\": {warm_seconds:.6},\n    \"warm_speedup\": {speedup:.2},\n    \"hits\": {hits},\n    \"misses\": {misses},\n    \"coalesced_builds\": {coalesced},\n    \"snapshot_write_seconds\": {snapshot_write_seconds:.6},\n    \"snapshot_load_seconds\": {snapshot_load_seconds:.6},\n    \"cached_bytes\": {bytes}\n  }}",
            name = circuit.name(),
            speedup = cold_seconds / warm_seconds,
            hits = stats.hits,
            misses = stats.misses,
            coalesced = broker.stats().coalesced,
            bytes = stats.bytes,
        )
    };

    let cache_json = |c: dd::CacheCounters| -> String {
        format!(
            "{{ \"hits\": {}, \"misses\": {}, \"evictions\": {} }}",
            c.hits, c.misses, c.evictions
        )
    };
    let construction_json = format!(
        "{{\n    \"seconds\": {construction_seconds:.6},\n    \"threads\": {construction_threads},\n    \"nodes\": {nodes},\n    \"vector_unique_hit_rate\": {vu:.4},\n    \"compute_hit_rate\": {ch:.4}\n  }}",
        vu = construction_stats.vector_unique_hit_rate(),
        ch = construction_stats.compute_hit_rate(),
    );
    let dd_stats_json = format!(
        "{{\n    \"vector_unique_hits\": {vuh},\n    \"vector_unique_misses\": {vum},\n    \"matrix_unique_hits\": {muh},\n    \"matrix_unique_misses\": {mum},\n    \"add_cache\": {add},\n    \"mv_cache\": {mv},\n    \"madd_cache\": {madd},\n    \"mm_cache\": {mm},\n    \"operator_cache\": {op},\n    \"garbage_collections\": {gcs}\n  }}",
        vuh = construction_stats.vector_unique_hits,
        vum = construction_stats.vector_unique_misses,
        muh = construction_stats.matrix_unique_hits,
        mum = construction_stats.matrix_unique_misses,
        add = cache_json(construction_stats.add_cache),
        mv = cache_json(construction_stats.mv_cache),
        madd = cache_json(construction_stats.madd_cache),
        mm = cache_json(construction_stats.mm_cache),
        op = cache_json(construction_stats.operator_cache),
        gcs = construction_stats.garbage_collections,
    );

    let rate = |seconds: f64| shots as f64 / seconds;
    let json = format!(
        "{{\n  \"benchmark\": \"{name}\",\n  \"qubits\": {qubits},\n  \"dd_nodes\": {nodes},\n  \"shots\": {shots},\n  \"threads\": {threads},\n  \"construction\": {construction_json},\n  \"dd_stats\": {dd_stats_json},\n  \"compile_seconds\": {compile_seconds:.6},\n  \"samplers\": {{\n    \"dd_sampler\": {{ \"seconds\": {dd:.6}, \"shots_per_second\": {dd_rate:.0} }},\n    \"normalized_sampler\": {{ \"seconds\": {nm:.6}, \"shots_per_second\": {nm_rate:.0} }},\n    \"compiled_sampler\": {{ \"seconds\": {cp:.6}, \"shots_per_second\": {cp_rate:.0} }},\n    \"compiled_parallel\": {{ \"seconds\": {pl:.6}, \"shots_per_second\": {pl_rate:.0}, \"threads\": {threads} }}\n  }},\n  \"trajectory\": {trajectory_json},\n  \"trajectory_parallel\": {trajectory_parallel_json},\n  \"trajectory_ipe\": {ipe_json},\n  \"trajectory_noisy\": {noisy_json},\n  \"trajectory_noisy_deep\": {deep_json},\n  \"tableau_ghz\": {tableau_json},\n  \"routed_supremacy\": {routed_json},\n  \"artifact_cache\": {artifact_cache_json},\n  \"speedup_compiled_vs_dd_sampler\": {speedup:.2},\n  \"speedup_parallel_vs_dd_sampler\": {pspeedup:.2}\n}}\n",
        name = circuit.name(),
        qubits = circuit.num_qubits(),
        dd = dd_seconds,
        dd_rate = rate(dd_seconds),
        nm = normalized_seconds,
        nm_rate = rate(normalized_seconds),
        cp = compiled_seconds,
        cp_rate = rate(compiled_seconds),
        pl = parallel_seconds,
        pl_rate = rate(parallel_seconds),
        speedup = dd_seconds / compiled_seconds,
        pspeedup = dd_seconds / parallel_seconds,
    );

    // workspace root = crates/bench/../..
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_sampler_throughput.json");
    std::fs::write(&path, &json).expect("baseline JSON is writable");
    eprintln!("\nbaseline written to {}:\n{json}", path.display());
}

criterion_group!(
    benches,
    bench_precompute,
    bench_per_sample,
    bench_trajectories,
    record_baseline_json
);
criterion_main!(benches);

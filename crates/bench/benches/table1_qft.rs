//! Table I, QFT rows: sampling time for `qft_16`, `qft_32`, `qft_48` with
//! the DD-based sampler, and for the sizes where the dense vector still
//! fits, the vector-based sampler.

use bench::{prepare_state, sample_prepared, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaksim::experiment::BenchmarkInstance;
use weaksim::Backend;

const SHOTS: u64 = 10_000;

fn instances() -> Vec<BenchmarkInstance> {
    [16u16, 32, 48]
        .into_iter()
        .map(|n| BenchmarkInstance {
            name: format!("qft_{n}"),
            circuit: algorithms::qft(n, true),
        })
        .collect()
}

fn bench_qft(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_qft");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for instance in instances() {
        let dd_state = prepare_state(&instance, Backend::DecisionDiagram);
        group.bench_with_input(
            BenchmarkId::new("dd_sample_10k", &instance.name),
            &dd_state,
            |b, state| b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED)),
        );
        // The dense vector is only affordable for the 16-qubit instance
        // (qft_32 and qft_48 are the paper's MO rows).
        if instance.circuit.num_qubits() <= 20 {
            let sv_state = prepare_state(&instance, Backend::StateVector);
            group.bench_with_input(
                BenchmarkId::new("vector_sample_10k", &instance.name),
                &sv_state,
                |b, state| b.iter(|| sample_prepared(state, SHOTS, BENCH_SEED)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_qft);
criterion_main!(benches);

//! Shared helpers for the benchmark harness that regenerates the evaluation
//! of the paper (Table I and the illustrative figures).
//!
//! The interesting entry points are the two binaries:
//!
//! * `cargo run -p bench --release --bin table1` — measures every benchmark
//!   of Table I with both samplers and prints the table;
//! * `cargo run -p bench --release --bin figures -- fig2|fig3|fig4` —
//!   regenerates the running-example figures.
//!
//! The Criterion benches under `benches/` time the individual families so
//! regressions in either sampler show up in CI.

use statevector::MemoryBudget;
use weaksim::experiment::BenchmarkInstance;
use weaksim::{Backend, WeakSimulator};

/// Number of samples used by the Criterion benches (Table I uses one
/// million; the benches default to fewer so a full run stays affordable and
/// scale linearly).
pub const BENCH_SHOTS: u64 = 100_000;

/// The seed used everywhere in the harness for reproducibility.
pub const BENCH_SEED: u64 = 2020;

/// Prepares a strong-simulation state once so benches can time the sampling
/// step in isolation (the quantity reported in Table I).
///
/// # Panics
///
/// Panics if the circuit cannot be simulated, which for the benchmark
/// circuits indicates a bug rather than a recoverable condition.
#[must_use]
pub fn prepare_state(instance: &BenchmarkInstance, backend: Backend) -> weaksim::StrongState {
    WeakSimulator::new(backend)
        .with_memory_budget(MemoryBudget::unlimited())
        .strong(&instance.circuit)
        .unwrap_or_else(|e| panic!("strong simulation of {} failed: {e}", instance.name))
}

/// Draws `shots` samples from a prepared state and returns the histogram
/// (used by benches as the timed body).
#[must_use]
pub fn sample_prepared(
    state: &weaksim::StrongState,
    shots: u64,
    seed: u64,
) -> weaksim::ShotHistogram {
    let (histogram, _, _) = WeakSimulator::sample(state, shots, seed)
        .unwrap_or_else(|e| panic!("sampling a prepared benchmark state failed: {e}"));
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaksim::experiment::{table1_benchmarks, BenchmarkScale};

    #[test]
    fn prepared_states_can_be_sampled() {
        let instances = table1_benchmarks(BenchmarkScale::Smoke);
        let instance = &instances[0];
        for backend in [Backend::DecisionDiagram, Backend::StateVector] {
            let state = prepare_state(instance, backend);
            let histogram = sample_prepared(&state, 100, BENCH_SEED);
            assert_eq!(histogram.shots(), 100);
        }
    }
}

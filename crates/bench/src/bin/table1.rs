//! Regenerates Table I of the paper: runtime and memory for error-free
//! sampling of bitstrings with the vector-based and the DD-based method.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin table1 [-- OPTIONS]
//!
//!   --scale smoke|reduced|full   benchmark set (default: reduced)
//!   --shots N                    samples per benchmark (default: 1000000)
//!   --budget-gib G               memory budget for the dense backend
//!                                (default: 32, the paper's machine)
//!   --dd-node-budget N           cap live DD nodes for the DD backend;
//!                                exceeding it prints an `MO` cell
//!   --dd-timeout-secs S          per-row wall-clock deadline for the DD
//!                                backend; exceeding it prints a `TO` cell
//!   --validate                   additionally run a chi-square check of the
//!                                DD samples against the exact distribution
//! ```
//!
//! The vector-based column reports `MO` when the dense amplitude array would
//! not fit the budget, mirroring the paper's presentation.  With a DD budget
//! or deadline configured, governed DD aborts likewise become `MO`/`TO`
//! cells instead of aborting the whole table.

use statevector::MemoryBudget;
use weaksim::experiment::{format_table, run_table1_row, table1_benchmarks, BenchmarkScale};
use weaksim::stats::chi_square_test;
use weaksim::{Backend, RunGovernor, WeakSimulator};

struct Options {
    scale: BenchmarkScale,
    shots: u64,
    budget: MemoryBudget,
    dd_governor: RunGovernor,
    validate: bool,
}

fn parse_options() -> Options {
    let mut options = Options {
        scale: BenchmarkScale::Reduced,
        shots: 1_000_000,
        budget: MemoryBudget::from_gib(32),
        dd_governor: RunGovernor::unlimited(),
        validate: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = match args.next().as_deref() {
                    Some("smoke") => BenchmarkScale::Smoke,
                    Some("full") => BenchmarkScale::Full,
                    Some("reduced") | None => BenchmarkScale::Reduced,
                    Some(other) => {
                        eprintln!("unknown scale '{other}', using reduced");
                        BenchmarkScale::Reduced
                    }
                }
            }
            "--shots" => {
                options.shots = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .unwrap_or(options.shots)
            }
            "--budget-gib" => {
                if let Some(gib) = args.next().and_then(|a| a.parse().ok()) {
                    options.budget = MemoryBudget::from_gib(gib);
                }
            }
            "--dd-node-budget" => {
                if let Some(nodes) = args.next().and_then(|a| a.parse().ok()) {
                    options.dd_governor = options.dd_governor.clone().with_node_budget(nodes);
                }
            }
            "--dd-timeout-secs" => {
                if let Some(secs) = args.next().and_then(|a| a.parse().ok()) {
                    options.dd_governor = options
                        .dd_governor
                        .clone()
                        .with_timeout(std::time::Duration::from_secs_f64(secs));
                }
            }
            "--validate" => options.validate = true,
            other => eprintln!("ignoring unknown argument '{other}'"),
        }
    }
    options
}

fn main() {
    let options = parse_options();
    let instances = table1_benchmarks(options.scale);
    println!(
        "Table I reproduction: {} benchmarks, {} samples each, dense budget {} GiB",
        instances.len(),
        options.shots,
        options.budget.bytes() / (1 << 30)
    );
    println!();

    let mut rows = Vec::new();
    for instance in &instances {
        eprintln!(
            "running {} ({} qubits)...",
            instance.name,
            instance.circuit.num_qubits()
        );
        match run_table1_row(
            instance,
            options.shots,
            options.budget,
            &options.dd_governor,
            2020,
        ) {
            Ok(row) => {
                if let Some(cell) = row.dd_failure_cell() {
                    eprintln!("  DD backend for {}: {cell}", instance.name);
                } else if options.validate {
                    validate(instance, options.shots.min(200_000));
                }
                rows.push(row);
            }
            Err(e) => eprintln!("  skipped {}: {e}", instance.name),
        }
    }

    println!("{}", format_table(&rows));
    println!("(vector `t` = prefix-sum construction + sampling; DD `t` = downstream precomputation + sampling;");
    println!(
        " `MO`/`TO` = memory budget exceeded / deadline hit for that backend, as in the paper)"
    );
}

fn validate(instance: &weaksim::experiment::BenchmarkInstance, shots: u64) {
    let outcome = WeakSimulator::new(Backend::DecisionDiagram)
        .run(&instance.circuit, shots, 77)
        .expect("validated circuit");
    // Exact probabilities are only affordable for moderate qubit counts.
    if instance.circuit.num_qubits() <= 26 {
        let chi = chi_square_test(&outcome.histogram, |i| outcome.strong().probability(i));
        eprintln!(
            "  validation: chi2 = {:.1}, dof = {}, p = {:.4} -> {}",
            chi.statistic,
            chi.degrees_of_freedom,
            chi.p_value,
            if chi.is_consistent(1e-4) {
                "consistent"
            } else {
                "REJECTED"
            }
        );
    } else {
        eprintln!("  validation skipped (too many qubits for exact comparison)");
    }
}

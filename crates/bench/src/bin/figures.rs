//! Regenerates the illustrative figures of the paper on its 3-qubit running
//! example.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin figures -- [fig2|fig3|fig4|all]
//! ```
//!
//! * `fig2` — the weak-simulation flow: circuit, amplitudes/probabilities
//!   from strong simulation, and sampled measurement outcomes.
//! * `fig3` — biased random selection via a prefix array and binary search,
//!   including the worked example with `p_hat = 1/2`.
//! * `fig4` — the state decision diagram: left-most normalization (4b),
//!   branch probabilities from the downstream/upstream traversals (4c) and
//!   the proposed 2-norm normalization (4d), as Graphviz DOT.

use dd::{DdPackage, EdgeProbabilities, Normalization};
use statevector::PrefixSampler;
use weaksim::{Backend, WeakSimulator};

fn main() -> Result<(), weaksim::RunError> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if matches!(which.as_str(), "fig2" | "all") {
        figure_2()?;
    }
    if matches!(which.as_str(), "fig3" | "all") {
        figure_3()?;
    }
    if matches!(which.as_str(), "fig4" | "all") {
        figure_4();
    }
    Ok(())
}

/// Fig. 2: circuit -> strong simulation -> probabilities -> samples.
fn figure_2() -> Result<(), weaksim::RunError> {
    println!("=== Fig. 2: mimicking a physical quantum computer ===\n");
    let circuit = algorithms::running_example();
    println!("quantum circuit description:\n{circuit}");

    let strong = WeakSimulator::new(Backend::StateVector).strong(&circuit)?;
    println!("strong simulation (amplitudes -> probabilities):");
    for index in 0..8u64 {
        println!("  p(|{index:03b}>) = {:.4}", strong.probability(index));
    }

    let outcome = WeakSimulator::new(Backend::DecisionDiagram).run(&circuit, 10, 1)?;
    let samples: Vec<String> = outcome
        .histogram
        .to_bitstring_counts()
        .into_iter()
        .flat_map(|(bits, count)| std::iter::repeat_n(bits, count as usize))
        .collect();
    println!(
        "\nweak simulation (ten measurement outcomes): {}\n",
        samples.join(" ")
    );
    Ok(())
}

/// Fig. 3: prefix array and binary search.
fn figure_3() -> Result<(), weaksim::RunError> {
    println!("=== Fig. 3: biased random selection via binary search ===\n");
    let circuit = algorithms::running_example();
    let strong = WeakSimulator::new(Backend::StateVector).strong(&circuit)?;
    let weaksim::StrongState::StateVector(vector) = &strong else {
        unreachable!("the state-vector backend returns a dense state");
    };
    println!("amplitudes   probabilities   prefix sums");
    let sampler = PrefixSampler::new(vector);
    for index in 0..8u64 {
        println!(
            "  {:>12}   {:>6.4}          {:>6.4}",
            format!("{}", vector.amplitude(index)),
            vector.probability(index),
            sampler.prefix_sums()[index as usize],
        );
    }
    println!(
        "\nbinary search with p_hat = 1/2 selects index {} -> |011> (Example 8)\n",
        sampler.locate(0.5)
    );
    Ok(())
}

/// Fig. 4: the decision diagram under both normalizations, with edge
/// probabilities.
fn figure_4() {
    println!("=== Fig. 4: decision-diagram representations ===\n");
    let circuit = algorithms::running_example();

    println!("--- Fig. 4b: left-most normalization ---");
    let mut leftmost = DdPackage::with_normalization(Normalization::LeftMost);
    let state = dd::simulate(&mut leftmost, &circuit).expect("valid circuit");
    println!("{}", dd::to_dot(&leftmost, &state, None));

    println!("--- Fig. 4c: branch probabilities from downstream/upstream traversals ---");
    let probabilities = EdgeProbabilities::new(&leftmost, &state);
    println!("{}", dd::to_dot(&leftmost, &state, Some(&probabilities)));

    println!("--- Fig. 4d: proposed 2-norm normalization ---");
    let mut two_norm = DdPackage::with_normalization(Normalization::TwoNorm);
    let state = dd::simulate(&mut two_norm, &circuit).expect("valid circuit");
    println!("{}", dd::to_dot(&two_norm, &state, None));
}

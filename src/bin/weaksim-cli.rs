//! `weaksim-cli` — a serve-loop front end over the artifact-cache broker.
//!
//! Reads OpenQASM circuits (file arguments, or file paths line-by-line on
//! stdin when no files are given), runs each as a weak-simulation *request*
//! through one long-lived [`weaksim::ServiceBroker`], and prints per-request
//! route, cache outcome, timings and the top measurement outcomes.  Feeding
//! the same circuit twice (or using `--repeat`) demonstrates the pay-once
//! contract: the first request pays strong simulation + sampler
//! preparation, every later one only the per-shot draw — with a histogram
//! bit-identical to the cold run for the same seed.
//!
//! ```text
//! weaksim-cli [--backend dd|sv] [--shots N] [--seed N] [--router]
//!             [--cache-bytes N] [--repeat N] [--construction-threads N]
//!             [--serve-threads N] [--max-inflight-builds N]
//!             [--snapshot PATH] [--snapshot-every N] [FILE ...]
//! ```
//!
//! With no `FILE` arguments the tool enters serve mode: each stdin line
//! naming a QASM file is one request, errors are reported per request and
//! the loop continues, and an end-of-session cache summary is printed on
//! EOF.  `--serve-threads N` serves requests on N worker threads through
//! the broker, which coalesces concurrent identical cold builds
//! single-flight and sheds requests it cannot admit before their deadline.
//! `--snapshot PATH` loads a cache snapshot at startup (corrupted sections
//! are skipped and rebuilt cold) and writes one at shutdown — clean or not
//! — and after every `--snapshot-every N` requests.
//!
//! A broken stdout (e.g. the consumer of a pipe exiting early) or a failing
//! stdin read never panics: the CLI stops serving, still writes the
//! snapshot, reports the cache summary on stderr and exits non-zero.

#![forbid(unsafe_code)]

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use weaksim::{
    ArtifactCache, Backend, CacheOutcome, RunGovernor, ServiceBroker, ServiceConfig, WeakSimulator,
};

/// How many distinct outcomes to print per request.
const TOP_OUTCOMES: usize = 4;

struct Options {
    backend: Backend,
    shots: u64,
    seed: u64,
    router: bool,
    cache_bytes: Option<u64>,
    repeat: u32,
    construction_threads: Option<usize>,
    serve_threads: usize,
    max_inflight_builds: usize,
    snapshot: Option<PathBuf>,
    snapshot_every: Option<u64>,
    files: Vec<String>,
}

const USAGE: &str = "usage: weaksim-cli [--backend dd|sv] [--shots N] [--seed N] [--router] \
                     [--cache-bytes N] [--repeat N] [--construction-threads N] \
                     [--serve-threads N] [--max-inflight-builds N] \
                     [--snapshot PATH] [--snapshot-every N] [FILE ...]\n\
                     With no FILEs, reads QASM file paths line-by-line from stdin (serve mode).";

fn parse_options(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        backend: Backend::DecisionDiagram,
        shots: 10_000,
        seed: 1,
        router: false,
        cache_bytes: None,
        repeat: 1,
        construction_threads: None,
        serve_threads: 1,
        max_inflight_builds: ServiceConfig::default().max_inflight_builds,
        snapshot: None,
        snapshot_every: None,
        files: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} expects a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--backend" => {
                options.backend = match value("--backend")?.as_str() {
                    "dd" => Backend::DecisionDiagram,
                    "sv" => Backend::StateVector,
                    other => return Err(format!("unknown backend `{other}` (want dd or sv)")),
                };
            }
            "--shots" => {
                options.shots = value("--shots")?
                    .parse()
                    .map_err(|e| format!("--shots: {e}"))?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--router" => options.router = true,
            "--cache-bytes" => {
                options.cache_bytes = Some(
                    value("--cache-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-bytes: {e}"))?,
                );
            }
            "--repeat" => {
                options.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
                if options.repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            "--construction-threads" => {
                // Decision-diagram construction workers; 0 = one per CPU.
                // The built diagram is bit-identical for every worker count.
                options.construction_threads = Some(
                    value("--construction-threads")?
                        .parse()
                        .map_err(|e| format!("--construction-threads: {e}"))?,
                );
            }
            "--serve-threads" => {
                options.serve_threads = value("--serve-threads")?
                    .parse()
                    .map_err(|e| format!("--serve-threads: {e}"))?;
                if options.serve_threads == 0 {
                    return Err("--serve-threads must be at least 1".into());
                }
            }
            "--max-inflight-builds" => {
                options.max_inflight_builds = value("--max-inflight-builds")?
                    .parse()
                    .map_err(|e| format!("--max-inflight-builds: {e}"))?;
                if options.max_inflight_builds == 0 {
                    return Err("--max-inflight-builds must be at least 1".into());
                }
            }
            "--snapshot" => {
                options.snapshot = Some(PathBuf::from(value("--snapshot")?));
            }
            "--snapshot-every" => {
                let every: u64 = value("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?;
                if every == 0 {
                    return Err("--snapshot-every must be at least 1".into());
                }
                options.snapshot_every = Some(every);
            }
            "--help" | "-h" => return Err(USAGE.into()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            file => options.files.push(file.to_owned()),
        }
    }
    Ok(options)
}

/// Writes one line to stderr, ignoring errors (stderr may be broken too;
/// diagnostics must never panic the serve loop).
fn note(message: &str) {
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(message.as_bytes());
    let _ = err.write_all(b"\n");
}

/// Shared serve-loop state: the broker, the simulator template, output
/// health, the request counter driving `--snapshot-every`, and the lock
/// serializing snapshot writes.
struct Serve {
    broker: ServiceBroker,
    sim: WeakSimulator,
    options: Options,
    /// False once stdout failed (e.g. broken pipe): stop writing reports.
    stdout_ok: AtomicBool,
    /// False once any request failed (the exit code).
    all_ok: AtomicBool,
    requests: AtomicU64,
    snapshot_lock: Mutex<()>,
}

impl Serve {
    /// Writes a fully-formatted report block to stdout atomically.  A write
    /// failure (broken pipe) marks stdout as broken instead of panicking.
    fn emit(&self, report: &str) {
        if !self.stdout_ok.load(Ordering::Relaxed) {
            return;
        }
        let mut out = std::io::stdout().lock();
        if out
            .write_all(report.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            self.stdout_ok.store(false, Ordering::Relaxed);
            self.all_ok.store(false, Ordering::Relaxed);
            note("stdout: write failed (broken pipe?); no further reports");
        }
    }

    /// Writes the snapshot if `--snapshot` is configured; failures are
    /// reported, never fatal mid-serve.
    fn write_snapshot(&self) -> bool {
        let Some(path) = &self.options.snapshot else {
            return true;
        };
        let _guard = match self.snapshot_lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match self.broker.write_snapshot(path) {
            Ok(report) => {
                note(&format!(
                    "snapshot: wrote {} artifact(s), {} bytes to {}",
                    report.entries,
                    report.bytes,
                    path.display()
                ));
                true
            }
            Err(e) => {
                note(&format!(
                    "snapshot: write to {} failed: {e}",
                    path.display()
                ));
                false
            }
        }
    }

    /// Runs one request (a QASM file) `repeat` times through the broker,
    /// emitting one report block per run.
    fn serve_request(&self, path: &str) {
        use std::fmt::Write as _;
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                note(&format!("{path}: cannot read: {e}"));
                self.all_ok.store(false, Ordering::Relaxed);
                return;
            }
        };
        let circuit = match circuit::qasm::parse(&source) {
            Ok(circuit) => circuit,
            Err(e) => {
                note(&format!("{path}: QASM parse error: {e}"));
                self.all_ok.store(false, Ordering::Relaxed);
                return;
            }
        };
        let name = if circuit.name().is_empty() {
            path
        } else {
            circuit.name()
        };
        for _ in 0..self.options.repeat {
            let wall = Instant::now();
            let outcome =
                match self
                    .broker
                    .serve(&self.sim, &circuit, self.options.shots, self.options.seed)
                {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        note(&format!("{path}: run failed: {e}"));
                        self.all_ok.store(false, Ordering::Relaxed);
                        return;
                    }
                };
            let wall = wall.elapsed();
            let cache = match outcome.cache {
                Some(CacheOutcome::Hit) => "hit",
                Some(CacheOutcome::Miss) => "miss",
                Some(CacheOutcome::Coalesced) => "coalesced",
                None => "bypass",
            };
            // Build the whole block off-lock, then emit it atomically so
            // concurrent workers never interleave partial reports.
            let mut report = String::new();
            let _ = writeln!(
                report,
                "{name}: {} qubits, {} shots, cache {cache}, route [{}]",
                circuit.num_qubits(),
                outcome.histogram.shots(),
                outcome.route,
            );
            let _ = writeln!(
                report,
                "  strong {:.3}s + prepare {:.3}s + sample {:.3}s (wall {:.3}s)",
                outcome.strong_time.as_secs_f64(),
                outcome.precompute_time.as_secs_f64(),
                outcome.sampling_time.as_secs_f64(),
                wall.as_secs_f64(),
            );
            let mut top: Vec<(u64, u64)> = outcome.histogram.sorted_counts();
            top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let shown: Vec<String> = top
                .iter()
                .take(TOP_OUTCOMES)
                .map(|&(outcome_bits, count)| {
                    format!("{} x{count}", outcome.histogram.bitstring(outcome_bits))
                })
                .collect();
            let rest = top.len().saturating_sub(TOP_OUTCOMES);
            if rest > 0 {
                let _ = writeln!(
                    report,
                    "  top outcomes: {} (+{rest} more)",
                    shown.join(", ")
                );
            } else {
                let _ = writeln!(report, "  top outcomes: {}", shown.join(", "));
            }
            self.emit(&report);

            let served = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
            if self
                .options
                .snapshot_every
                .is_some_and(|every| served.is_multiple_of(every))
            {
                self.write_snapshot();
            }
        }
    }
}

fn main() -> ExitCode {
    let options = match parse_options(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            note(&message);
            return ExitCode::FAILURE;
        }
    };

    let cache = match options.cache_bytes {
        Some(bytes) => ArtifactCache::governed(&RunGovernor::unlimited().with_byte_budget(bytes)),
        None => ArtifactCache::unbounded(),
    };
    let config = ServiceConfig {
        max_inflight_builds: options.max_inflight_builds,
        ..ServiceConfig::default()
    };
    let broker = ServiceBroker::new(cache, config);

    if let Some(path) = &options.snapshot {
        match broker.load_snapshot(path) {
            Ok(report) => {
                for message in &report.messages {
                    note(&format!("snapshot: {message}"));
                }
                note(&format!(
                    "snapshot: restored {} artifact(s) from {} ({} skipped)",
                    report.loaded,
                    path.display(),
                    report.skipped
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                note(&format!(
                    "snapshot: {} not found, starting cold",
                    path.display()
                ));
            }
            Err(e) => {
                note(&format!(
                    "snapshot: cannot read {}: {e}; starting cold",
                    path.display()
                ));
            }
        }
    }

    let mut sim = WeakSimulator::new(options.backend);
    if options.router {
        sim = sim.with_clifford_router();
    }
    if let Some(threads) = options.construction_threads {
        sim = sim.with_construction_threads(threads);
    }

    let serve = Serve {
        broker,
        sim,
        options,
        stdout_ok: AtomicBool::new(true),
        all_ok: AtomicBool::new(true),
        requests: AtomicU64::new(0),
        snapshot_lock: Mutex::new(()),
    };

    if serve.options.files.is_empty() {
        // Serve mode: one QASM file path per stdin line, errors are
        // per-request and the loop keeps going.  The stdin reader feeds a
        // channel drained by `--serve-threads` workers; a failing stdin
        // read stops intake but lets in-flight requests finish.
        let (tx, rx) = mpsc::channel::<String>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..serve.options.serve_threads {
                scope.spawn(|| loop {
                    let request = {
                        let receiver = match rx.lock() {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        receiver.recv()
                    };
                    match request {
                        Ok(path) => serve.serve_request(&path),
                        Err(_) => break,
                    }
                });
            }
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = match line {
                    Ok(line) => line,
                    Err(e) => {
                        note(&format!("stdin: read failed: {e}; shutting down"));
                        serve.all_ok.store(false, Ordering::Relaxed);
                        break;
                    }
                };
                let path = line.trim();
                if path.is_empty() || path.starts_with('#') {
                    continue;
                }
                if tx.send(path.to_owned()).is_err() {
                    break;
                }
            }
            drop(tx);
        });
    } else {
        for path in serve.options.files.clone() {
            serve.serve_request(&path);
        }
    }

    // Shutdown — clean or not: persist the cache, then report.  The summary
    // goes to stdout when it still works, stderr otherwise (a broken pipe
    // must not swallow the session accounting).
    if !serve.write_snapshot() {
        serve.all_ok.store(false, Ordering::Relaxed);
    }
    let stats = serve.broker.cache().stats();
    let service = serve.broker.stats();
    let summary = format!(
        "cache: {} entries, {} bytes, {} hits / {} misses, {} evictions\n\
         service: {} builds, {} coalesced, {} shed, {} retries, {} build failures\n",
        stats.entries,
        stats.bytes,
        stats.hits,
        stats.misses,
        stats.evictions,
        service.builds,
        service.coalesced,
        service.shed,
        service.retries,
        service.build_failures,
    );
    if serve.stdout_ok.load(Ordering::Relaxed) {
        serve.emit(&summary);
    }
    if !serve.stdout_ok.load(Ordering::Relaxed) {
        note(summary.trim_end());
    }
    if serve.all_ok.load(Ordering::Relaxed) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

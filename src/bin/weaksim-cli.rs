//! `weaksim-cli` — a serve-loop front end over the artifact cache.
//!
//! Reads OpenQASM circuits (file arguments, or file paths line-by-line on
//! stdin when no files are given), runs each as a weak-simulation *request*
//! against one long-lived [`weaksim::ArtifactCache`], and prints per-request
//! route, cache outcome, timings and the top measurement outcomes.  Feeding
//! the same circuit twice (or using `--repeat`) demonstrates the pay-once
//! contract: the first request pays strong simulation + sampler
//! preparation, every later one only the per-shot draw — with a histogram
//! bit-identical to the cold run for the same seed.
//!
//! ```text
//! weaksim-cli [--backend dd|sv] [--shots N] [--seed N] [--router]
//!             [--cache-bytes N] [--repeat N] [--construction-threads N]
//!             [FILE ...]
//! ```
//!
//! With no `FILE` arguments the tool enters serve mode: each stdin line
//! naming a QASM file is one request, errors are reported per request and
//! the loop continues, and an end-of-session cache summary is printed on
//! EOF.

#![forbid(unsafe_code)]

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Instant;

use weaksim::{ArtifactCache, Backend, CacheOutcome, RunGovernor, WeakSimulator};

/// How many distinct outcomes to print per request.
const TOP_OUTCOMES: usize = 4;

struct Options {
    backend: Backend,
    shots: u64,
    seed: u64,
    router: bool,
    cache_bytes: Option<u64>,
    repeat: u32,
    construction_threads: Option<usize>,
    files: Vec<String>,
}

const USAGE: &str = "usage: weaksim-cli [--backend dd|sv] [--shots N] [--seed N] [--router] \
                     [--cache-bytes N] [--repeat N] [--construction-threads N] [FILE ...]\n\
                     With no FILEs, reads QASM file paths line-by-line from stdin (serve mode).";

fn parse_options(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        backend: Backend::DecisionDiagram,
        shots: 10_000,
        seed: 1,
        router: false,
        cache_bytes: None,
        repeat: 1,
        construction_threads: None,
        files: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} expects a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--backend" => {
                options.backend = match value("--backend")?.as_str() {
                    "dd" => Backend::DecisionDiagram,
                    "sv" => Backend::StateVector,
                    other => return Err(format!("unknown backend `{other}` (want dd or sv)")),
                };
            }
            "--shots" => {
                options.shots = value("--shots")?
                    .parse()
                    .map_err(|e| format!("--shots: {e}"))?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--router" => options.router = true,
            "--cache-bytes" => {
                options.cache_bytes = Some(
                    value("--cache-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-bytes: {e}"))?,
                );
            }
            "--repeat" => {
                options.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
                if options.repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            "--construction-threads" => {
                // Decision-diagram construction workers; 0 = one per CPU.
                // The built diagram is bit-identical for every worker count.
                options.construction_threads = Some(
                    value("--construction-threads")?
                        .parse()
                        .map_err(|e| format!("--construction-threads: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(USAGE.into()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            file => options.files.push(file.to_owned()),
        }
    }
    Ok(options)
}

/// Runs one request (a QASM file) `repeat` times against the shared cache,
/// printing one report line per run.  Returns `false` if the request failed.
fn serve_request(sim: &mut WeakSimulator, options: &Options, path: &str) -> bool {
    let source = match std::fs::read_to_string(path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return false;
        }
    };
    let circuit = match circuit::qasm::parse(&source) {
        Ok(circuit) => circuit,
        Err(e) => {
            eprintln!("{path}: QASM parse error: {e}");
            return false;
        }
    };
    let name = if circuit.name().is_empty() {
        path
    } else {
        circuit.name()
    };
    for _ in 0..options.repeat {
        let wall = Instant::now();
        let outcome = match sim.run(&circuit, options.shots, options.seed) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("{path}: run failed: {e}");
                return false;
            }
        };
        let wall = wall.elapsed();
        let cache = match outcome.cache {
            Some(CacheOutcome::Hit) => "hit",
            Some(CacheOutcome::Miss) => "miss",
            None => "bypass",
        };
        println!(
            "{name}: {} qubits, {} shots, cache {cache}, route [{}]",
            circuit.num_qubits(),
            outcome.histogram.shots(),
            outcome.route,
        );
        println!(
            "  strong {:.3}s + prepare {:.3}s + sample {:.3}s (wall {:.3}s)",
            outcome.strong_time.as_secs_f64(),
            outcome.precompute_time.as_secs_f64(),
            outcome.sampling_time.as_secs_f64(),
            wall.as_secs_f64(),
        );
        let mut top: Vec<(u64, u64)> = outcome.histogram.sorted_counts();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let shown: Vec<String> = top
            .iter()
            .take(TOP_OUTCOMES)
            .map(|&(outcome_bits, count)| {
                format!("{} x{count}", outcome.histogram.bitstring(outcome_bits))
            })
            .collect();
        let rest = top.len().saturating_sub(TOP_OUTCOMES);
        if rest > 0 {
            println!("  top outcomes: {} (+{rest} more)", shown.join(", "));
        } else {
            println!("  top outcomes: {}", shown.join(", "));
        }
    }
    true
}

fn main() -> ExitCode {
    let options = match parse_options(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let cache = match options.cache_bytes {
        Some(bytes) => ArtifactCache::governed(&RunGovernor::unlimited().with_byte_budget(bytes)),
        None => ArtifactCache::unbounded(),
    };
    let mut sim = WeakSimulator::new(options.backend).with_cache(&cache);
    if options.router {
        sim = sim.with_clifford_router();
    }
    if let Some(threads) = options.construction_threads {
        sim = sim.with_construction_threads(threads);
    }

    let mut all_ok = true;
    if options.files.is_empty() {
        // Serve mode: one QASM file path per stdin line, errors are
        // per-request and the loop keeps going.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    eprintln!("stdin: {e}");
                    all_ok = false;
                    break;
                }
            };
            let path = line.trim();
            if path.is_empty() || path.starts_with('#') {
                continue;
            }
            all_ok &= serve_request(&mut sim, &options, path);
        }
    } else {
        for path in &options.files {
            all_ok &= serve_request(&mut sim, &options, path);
        }
    }

    let stats = cache.stats();
    println!(
        "cache: {} entries, {} bytes, {} hits / {} misses, {} evictions",
        stats.entries, stats.bytes, stats.hits, stats.misses, stats.evictions,
    );
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Umbrella crate of the weak-simulation reproduction.
//!
//! This crate simply re-exports the workspace members so examples,
//! integration tests and downstream users can depend on a single package:
//!
//! * [`mathkit`] — complex arithmetic, value interning, compensated sums;
//! * [`circuit`] — the circuit IR and OpenQASM subset;
//! * [`algorithms`] — benchmark circuit generators;
//! * [`dd`] — decision diagrams, strong simulation and the DD sampler;
//! * [`statevector`] — the dense baseline simulator and prefix-sum sampler;
//! * [`weaksim`] — the unified front end, statistics and experiment harness.
//!
//! # Examples
//!
//! ```
//! use weaksim_repro::weaksim::{Backend, WeakSimulator};
//!
//! let circuit = weaksim_repro::algorithms::ghz(3);
//! let outcome = WeakSimulator::new(Backend::DecisionDiagram).run(&circuit, 100, 0)?;
//! assert_eq!(outcome.histogram.shots(), 100);
//! # Ok::<(), weaksim_repro::weaksim::RunError>(())
//! ```

#![forbid(unsafe_code)]

pub use algorithms;
pub use circuit;
pub use dd;
pub use mathkit;
pub use statevector;
pub use weaksim;
